"""Differential harness: the real TSE pipeline vs the reference oracle.

:class:`DifferentialHarness` owns one real :class:`TseDatabase` and one
:class:`~repro.checking.oracle.RefModel` and applies each
:class:`~repro.checking.commands.Command` to **both**, then asserts
observable equivalence after every step:

* agreement on the *outcome* (applied vs rejected — any ``TseError`` on
  the real side must correspond to an ``OracleReject``, and vice versa);
* per view: class names, version number, and the reachability closure of
  the is-a edges (closures, not direct edges, so the comparison is
  insensitive to how transitive reduction is materialised);
* per view class: attribute/method name sets (through the view's aliases)
  and the sorted extent;
* per object in every extent: the full attribute-value mapping as read
  through that view class (stored values and declared defaults).

Crash commands arm a :class:`~repro.storage.wal.CrashInjector`, run one
real mutation until ``SimulatedCrash``, then recover the real database
from its WAL directory; the oracle simply *skips* the armed operation
(both journal orders make an interrupted first append lose the whole
change).  Reader commands pin epoch snapshots on both sides and compare
them on demand.  Savepoint commands run the real block under
``db.transaction()`` while the oracle applies the inner updates to a
deep-copied shadow that is kept on commit and discarded on abort.

Entry points:

* :func:`run_sequence` — seedable standalone driver (generate + run);
* :func:`run_commands` — replay an explicit command list (corpus replays,
  ddmin probes);
* :class:`DifferentialMachine` — a Hypothesis ``RuleBasedStateMachine``
  wrapping the same harness, so Hypothesis explores op interleavings and
  shrinks its own failures.
"""

from __future__ import annotations

import copy
import os
import random
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.checking.commands import (
    APP_SLOTS,
    MIGRATION_OPS,
    READER_SLOTS,
    SCHEMA_OPS,
    UPDATE_OPS,
    VERSION_OPS,
    Command,
    CommandGenerator,
    command_from_dict,
    command_to_dict,
)
from repro.checking.oracle import OracleReject, RefModel, Spec
from repro.core.database import TseDatabase
from repro.errors import TseError
from repro.schema.properties import Attribute
from repro.storage.wal import CrashInjector, SimulatedCrash


def _noop_method(handle, *args):
    """Body for fuzz-generated methods (observable only by name)."""
    return None


def _copy_published(published: dict) -> dict:
    """Two-level copy of a published epoch snapshot.

    The snapshot's leaves (version ints, class names, OIDs) are immutable,
    so copying the containers is as isolating as ``copy.deepcopy`` at a
    fraction of the cost — reader pins are taken on every reader open and
    refresh.
    """
    return {
        view: {
            "version": snap["version"],
            "classes": list(snap["classes"]),
            "extents": {cls: list(oids) for cls, oids in snap["extents"].items()},
        }
        for view, snap in published.items()
    }


class Divergence(AssertionError):
    """The real system and the oracle disagree."""

    def __init__(self, kind: str, op: str, step: int, detail: str) -> None:
        super().__init__(f"[step {step}] {op}: {kind}: {detail}")
        self.kind = kind
        self.op = op
        self.step = step
        self.detail = detail

    def signature(self) -> Tuple[str, str]:
        """What ddmin preserves while shrinking."""
        return (self.kind, self.op)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "op": self.op,
            "step": self.step,
            "detail": self.detail,
        }


#: ops applied through the uniform prepare/two-sided path
_PREP_OPS = UPDATE_OPS + SCHEMA_OPS + ("define_class", "create_view")


class DifferentialHarness:
    """One real database + one oracle, stepped in lockstep."""

    def __init__(
        self,
        wal_dir=None,
        sync: str = "off",
        dossier_dir=None,
        migration_mode: Optional[str] = None,
    ) -> None:
        self._tmp: Optional[str] = None
        if wal_dir is None:
            self._tmp = tempfile.mkdtemp(prefix="tse-diff-")
            wal_dir = self._tmp
        self.wal_dir = wal_dir
        # where divergence dossiers land; the TSE_DOSSIER_DIR env var lets
        # CI collect forensic bundles from any fuzz entry point without
        # threading a parameter through every caller
        if dossier_dir is None:
            dossier_dir = os.environ.get("TSE_DOSSIER_DIR") or None
        self.dossier_dir = Path(dossier_dir) if dossier_dir else None
        #: every command applied, in order (the replayable dossier payload)
        self.history: List[Command] = []
        #: path of the most recent divergence dossier (None when disabled)
        self.last_dossier: Optional[Path] = None
        # crash commands simulate crashes (the process survives), so
        # fsyncing the throwaway WAL buys nothing — "off" keeps every
        # append flushed to the OS, which is all recovery needs here
        self.sync = sync
        # migration_mode pins lazy vs eager epoch capture for the whole run
        # (None defers to the usual env/default resolution); the background
        # backfill worker is always off here — a concurrent worker append
        # would consume armed crash injections and wreck replay
        # determinism, so drains happen only through explicit
        # ``backfill_step`` commands and reader first-touch captures
        self.migration_mode = migration_mode
        self.db = self._fresh_db(TseDatabase())
        self.model = RefModel()
        self.readers: Dict[int, object] = {}
        self.pins: Dict[int, dict] = {}
        #: fleet app slots: slot -> (view name, pinned version number).
        #: Bindings survive recovery — view histories are durable, so a
        #: pinned app keeps working against the recovered database.
        self.apps: Dict[int, Tuple[str, int]] = {}
        self.step = 0
        self.outcomes: List[Tuple[int, str, str]] = []
        # the equivalence sweep normally reads each view in bulk (one
        # latched read per view, schema-derived plans cached across
        # steps); False falls back to the historical accessor-at-a-time
        # sweep — kept for the hot-path benchmark's "before" mode and as
        # a cross-check of the bulk reader itself
        self.bulk_sweep = True
        self._dump_plans: Dict[tuple, list] = {}
        # batched=False routes apply_many through the legacy per-update
        # path (per-update WAL commits, no atomicity) — the benchmark's
        # "before" mode
        self.batched = True
        # sweep memo: commands that provably changed nothing observable
        # (read-only selects, rejected updates) reuse the previous sweep's
        # verdict.  The key covers both sides' change counters plus a
        # db-incarnation number so a recovery that lands on coincidentally
        # equal generation counters can never mask a recovery divergence.
        self._db_incarnation = 0
        self._last_sweep_key: Optional[tuple] = None

    def _fresh_db(self, db: TseDatabase) -> TseDatabase:
        """Stamp the harness's migration configuration onto a database
        (the initial one and every recovered replacement) before its
        session manager attaches."""
        if self.migration_mode is not None:
            db.migration_mode = self.migration_mode
        db.migration_backfill = False
        return db

    def close(self) -> None:
        for session in self.readers.values():
            try:
                session.close()
            except Exception:
                pass
        self.readers.clear()
        self.pins.clear()
        self.db = None
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None

    # ------------------------------------------------------------------
    # the one public verb
    # ------------------------------------------------------------------

    def apply(self, command: Command) -> str:
        """Apply one command to both systems; raise :class:`Divergence` on
        any disagreement (outcome or observable state).

        Every command lands in :attr:`history` first, so a divergence can
        ship a *replayable* crash dossier: the flight-recorder bundle plus
        the exact command sequence that reached the disagreement."""
        self.step += 1
        self.history.append(command)
        op = command.op
        args = dict(command.args)
        try:
            try:
                if op in _PREP_OPS:
                    prep = self._prepare(op, args)
                    outcome = (
                        "skipped" if prep is None else self._two_sided(op, *prep)
                    )
                else:
                    outcome = getattr(self, f"_op_{op}")(args)
            except Divergence:
                raise
            except OracleReject as exc:  # oracle raised outside its contract
                raise Divergence(
                    "oracle-exception", op, self.step, f"{type(exc).__name__}: {exc}"
                )
            except Exception as exc:  # a real-system invariant crash is a finding
                raise Divergence(
                    "exception", op, self.step, f"{type(exc).__name__}: {exc}"
                )
            self.outcomes.append((self.step, op, outcome))
            self._check_equivalence(op)
        except Divergence as divergence:
            self.last_dossier = self._file_dossier(divergence)
            raise
        return outcome

    def _file_dossier(self, divergence: Divergence):
        """Dump the forensic bundle for one divergence.

        Writes into :attr:`dossier_dir` when configured (the fuzz jobs set
        ``TSE_DOSSIER_DIR`` so CI can upload the bundle as an artifact);
        the dossier's ``extra.commands`` replays through
        :func:`run_commands` byte-for-byte."""
        if self.db is None:
            return None
        flight = self.db.obs.flight
        flight.record(
            "divergence",
            divergence_kind=divergence.kind,
            op=divergence.op,
            step=divergence.step,
            detail=divergence.detail,
        )
        if self.dossier_dir is None:
            return None
        try:
            return flight.dump_dossier(
                "divergence",
                extra={
                    "divergence": divergence.to_dict(),
                    "commands": [command_to_dict(c) for c in self.history],
                    "outcomes": list(self.outcomes),
                },
                directory=self.dossier_dir,
            )
        except OSError:  # forensics must never mask the finding itself
            return None

    # ------------------------------------------------------------------
    # two-sided application
    # ------------------------------------------------------------------

    def _two_sided(
        self, op: str, real_fn: Callable[[], object], oracle_fn: Callable[[object], None]
    ) -> str:
        try:
            value = real_fn()
            real_ok, real_err = True, None
        except TseError as exc:
            real_ok, real_err = False, exc
        if real_ok:
            try:
                oracle_fn(value)
            except OracleReject as exc:
                raise Divergence(
                    "outcome", op, self.step, f"real applied, oracle rejected: {exc}"
                )
            return "applied"
        try:
            oracle_fn(None)
        except OracleReject:
            return "rejected"
        raise Divergence(
            "outcome",
            op,
            self.step,
            f"real rejected ({type(real_err).__name__}: {real_err}), oracle applied",
        )

    def _prepare(self, op: str, args: dict):
        """Resolve a command's blind indices against the oracle and return
        ``(real_fn, oracle_fn)``, or ``None`` when a reference cannot be
        resolved (an agreed skip on both systems)."""
        return getattr(self, f"_prep_{op}")(args)

    # -- index resolution (oracle observables are the address space) ----------

    @staticmethod
    def _pick(seq, i):
        seq = list(seq)
        return seq[i % len(seq)] if seq else None

    def _r_view(self, i) -> Optional[str]:
        return self._pick(self.model.view_names(), i)

    def _r_class(self, view: str, i) -> Optional[str]:
        return self._pick(self.model.class_names(view), i)

    def _r_attr(self, view: str, cls: str, i) -> Optional[str]:
        return self._pick(self.model.attribute_names(view, cls), i)

    def _r_oid(self, view: str, cls: str, i):
        return self._pick(self.model.extent_oids(view, cls), i)

    # -- authoring ------------------------------------------------------------

    def _prep_define_class(self, args):
        name = args["name"]
        parents: List[str] = []
        for i in args["parent_picks"]:
            parent = self._pick(self.model.user_bases, i)
            if parent is not None and parent not in parents:
                parents.append(parent)
        specs = [
            Spec(a["name"], "attr", "any", a["required"], a["default"])
            for a in args["attrs"]
        ]
        props = [
            Attribute(name=s.name, required=s.required, default=s.default)
            for s in specs
        ]

        def real():
            if parents:
                return self.db.define_class(name, props, inherits_from=parents)
            return self.db.define_class(name, props)

        def oracle(_value):
            self.model.define_class(name, specs, parents)

        return real, oracle

    def _prep_create_view(self, args):
        name = args["name"]
        classes: List[str] = []
        for i in args["picks"]:
            cls = self._pick(self.model.user_bases, i)
            if cls is not None and cls not in classes:
                classes.append(cls)
        if not classes:
            return None

        def real():
            return self.db.create_view(name, classes, closure="ignore")

        def oracle(_value):
            self.model.create_view(name, classes)

        return real, oracle

    # -- generic updates ------------------------------------------------------

    def _prep_create(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        attrs = self.model.attribute_names(view, cls)
        assigns: Dict[str, object] = {}
        for i, value in args["assigns"]:
            if attrs:
                assigns[attrs[i % len(attrs)]] = value

        def real():
            return self.db.view(view)[cls].create(**assigns).oid

        def oracle(oid):
            self.model.create(view, cls, assigns, oid)

        return real, oracle

    def _prep_add(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        src = self._r_class(view, args["src_cls_i"])
        dest = self._r_class(view, args["cls_i"])
        if src is None or dest is None:
            return None
        oid = self._r_oid(view, src, args["obj_i"])
        if oid is None:
            return None

        def real():
            self.db.view(view)[src].get_object(oid).add_to(dest)

        def oracle(_value):
            self.model.add(view, dest, oid)

        return real, oracle

    def _prep_remove(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        oid = self._r_oid(view, cls, args["obj_i"])
        if oid is None:
            return None

        def real():
            self.db.view(view)[cls].get_object(oid).remove_from(cls)

        def oracle(_value):
            self.model.remove(view, cls, oid)

        return real, oracle

    def _prep_set(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        oid = self._r_oid(view, cls, args["obj_i"])
        attr = self._r_attr(view, cls, args["attr_i"])
        if oid is None or attr is None:
            return None
        value = args["value"]

        def real():
            self.db.view(view)[cls].get_object(oid).set(attr, value)

        def oracle(_value):
            self.model.set_values(view, cls, oid, {attr: value})

        return real, oracle

    def _prep_delete(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        oid = self._r_oid(view, cls, args["obj_i"])
        if oid is None:
            return None

        def real():
            self.db.view(view)[cls].get_object(oid).delete()

        def oracle(_value):
            self.model.delete(oid)

        return real, oracle

    # -- schema evolution -----------------------------------------------------

    def _prep_add_attribute(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        to = self._r_class(view, args["to_i"])
        if to is None:
            return None
        name, default = args["name"], args["default"]

        def real():
            self.db.view(view).add_attribute(name, to=to, default=default)

        def oracle(_value):
            self.model.add_property(view, to, Spec(name, "attr", "any", False, default))

        return real, oracle

    def _prep_add_method(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        to = self._r_class(view, args["to_i"])
        if to is None:
            return None
        name = args["name"]

        def real():
            self.db.view(view).add_method(name, to=to, body=_noop_method)

        def oracle(_value):
            self.model.add_property(view, to, Spec(name, "method"))

        return real, oracle

    def _prep_delete_attribute(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        attr = self._r_attr(view, cls, args["attr_i"])
        if attr is None:
            return None

        def real():
            self.db.view(view).delete_attribute(attr, from_=cls)

        def oracle(_value):
            self.model.delete_property(view, cls, attr, "attr")

        return real, oracle

    def _prep_delete_method(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        meth = self._pick(self.model.method_names(view, cls), args["meth_i"])
        if meth is None:
            return None

        def real():
            self.db.view(view).delete_method(meth, from_=cls)

        def oracle(_value):
            self.model.delete_property(view, cls, meth, "method")

        return real, oracle

    def _prep_add_edge(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        sup = self._r_class(view, args["sup_i"])
        sub = self._r_class(view, args["sub_i"])
        if sup is None or sub is None:
            return None

        def real():
            self.db.view(view).add_edge(sup, sub)

        def oracle(_value):
            self.model.add_edge(view, sup, sub)

        return real, oracle

    def _prep_delete_edge(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        sup = self._r_class(view, args["sup_i"])
        sub = self._r_class(view, args["sub_i"])
        if sup is None or sub is None:
            return None
        conn = None
        if args.get("connect"):
            conn = self._pick(self.model.ancestors(view, sup), args["conn_i"])

        def real():
            self.db.view(view).delete_edge(sup, sub, connected_to=conn)

        def oracle(_value):
            self.model.delete_edge(view, sup, sub, conn)

        return real, oracle

    def _prep_add_class(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        conn = None
        if args.get("connect"):
            conn = self._r_class(view, args["conn_i"])
        name = args["name"]

        def real():
            self.db.view(view).add_class(name, connected_to=conn)

        def oracle(_value):
            self.model.add_class(view, name, connected_to=conn)

        return real, oracle

    def _prep_delete_class(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None

        def real():
            self.db.view(view).delete_class(cls)

        def oracle(_value):
            self.model.delete_class(view, cls)

        return real, oracle

    def _prep_rename_class(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        new = args["new"]

        def real():
            self.db.view(view).rename_class(cls, new)

        def oracle(_value):
            self.model.rename_class(view, cls, new)

        return real, oracle

    def _prep_rename_property(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None
        props = sorted(
            self.model.attribute_names(view, cls) + self.model.method_names(view, cls)
        )
        old = self._pick(props, args["prop_i"])
        if old is None:
            return None
        new = args["new"]

        def real():
            self.db.view(view).rename_property(cls, old, new)

        def oracle(_value):
            self.model.rename_property(view, cls, old, new)

        return real, oracle

    def _prep_insert_class(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        sup = self._r_class(view, args["sup_i"])
        sub = self._r_class(view, args["sub_i"])
        if sup is None or sub is None:
            return None
        name = args["name"]

        def real():
            self.db.view(view).insert_class(name, (sup, sub))

        def oracle(_value):
            self.model.insert_class(view, name, (sup, sub))

        return real, oracle

    def _prep_delete_class_2(self, args):
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        cls = self._r_class(view, args["cls_i"])
        if cls is None:
            return None

        def real():
            self.db.view(view).delete_class_2(cls)

        def oracle(_value):
            self.model.delete_class_2(view, cls)

        return real, oracle

    # ------------------------------------------------------------------
    # durability commands
    # ------------------------------------------------------------------

    def _op_enable_wal(self, args) -> str:
        if self.db.wal is not None:
            return "skipped"
        self.db.enable_wal(self.wal_dir, sync=self.sync)
        return "applied"

    def _op_checkpoint(self, args) -> str:
        if self.db.wal is None:
            return "skipped"
        self.db.checkpoint()
        return "applied"

    def _op_crash(self, args) -> str:
        if self.db.wal is None:
            return "skipped"
        point = args["point"]
        injector = CrashInjector(point, at=1)
        if point.startswith("checkpoint:"):
            self.db.wal.injector = injector
            try:
                self.db.checkpoint()
            except SimulatedCrash:
                self._recover_after_crash()
                return "crashed"
            self.db.wal.injector = None
            return "applied"  # pragma: no cover - checkpoint always hits its seams
        inner = command_from_dict(args["inner"])
        prep = self._prepare(inner.op, dict(inner.args))
        if prep is None:
            return "skipped"
        real_fn, oracle_fn = prep
        self.db.wal.log.injector = injector
        try:
            value = real_fn()
        except SimulatedCrash:
            # the armed append died mid-write: recovery truncates the torn
            # record, so the whole operation is lost — the oracle skips it
            self._recover_after_crash()
            return "crashed"
        except TseError as exc:
            # rejected before anything was journaled: agreed rejection
            self.db.wal.log.injector = None
            try:
                oracle_fn(None)
            except OracleReject:
                return "rejected"
            raise Divergence(
                "outcome",
                inner.op,
                self.step,
                f"real rejected before journaling ({type(exc).__name__}), "
                f"oracle applied",
            )
        self.db.wal.log.injector = None
        try:
            oracle_fn(value)
        except OracleReject as exc:  # pragma: no cover - defensive
            raise Divergence(
                "outcome", inner.op, self.step,
                f"real applied without journaling, oracle rejected: {exc}",
            )
        return "applied"  # pragma: no cover - mutations always journal

    def _op_recover_clean(self, args) -> str:
        if self.db.wal is None:
            return "skipped"
        recovered = TseDatabase.recover(self.wal_dir, sync=self.sync)
        # recovery must be deterministic: recovering the same directory
        # twice yields byte-identical databases (reuses the WAL suite's
        # equivalence assertion when it is importable, i.e. under pytest)
        try:
            from test_wal import assert_equivalent
        except ImportError:  # pragma: no cover - outside the test tree
            assert_equivalent = None
        if assert_equivalent is not None:
            twin = TseDatabase.recover(self.wal_dir, sync=self.sync)
            try:
                assert_equivalent(recovered, twin)
            except AssertionError as exc:
                raise Divergence(
                    "recovery", "recover_clean", self.step,
                    f"two recoveries of the same log differ: {exc}",
                )
        self._install_recovered(recovered)
        return "applied"

    def _recover_after_crash(self) -> None:
        self._install_recovered(TseDatabase.recover(self.wal_dir, sync=self.sync))

    def _install_recovered(self, recovered) -> None:
        self.readers.clear()
        self.pins.clear()
        self._dump_plans.clear()  # plans hold closures over the dead db
        self._db_incarnation += 1  # force a fresh sweep of the recovered db
        self.db = self._fresh_db(recovered)
        if self.model.sessions_attached:
            self.db.sessions()  # re-attach; publishes the baseline epoch
        self.model.published = {}
        self.model.publish()

    # ------------------------------------------------------------------
    # savepoint transactions
    # ------------------------------------------------------------------

    def _op_txn(self, args) -> str:
        inner = [command_from_dict(d) for d in args["inner"]]
        if not args.get("abort"):
            with self.db.transaction():
                for cmd in inner:
                    self._apply_inner(cmd)
            return "applied"
        # inner commands are generic updates only, so the cheap
        # updates-only clone is a faithful shadow
        shadow = self.model.clone_for_updates()
        live, self.model = self.model, shadow
        try:
            with self.db.transaction():
                for cmd in inner:
                    self._apply_inner(cmd)
                raise _AbortTxn()
        except _AbortTxn:
            pass
        finally:
            self.model = live  # the shadow (and the real txn) are discarded
        return "aborted"

    def _apply_inner(self, command: Command) -> None:
        prep = self._prepare(command.op, dict(command.args))
        if prep is not None:
            self._two_sided(command.op, *prep)

    # ------------------------------------------------------------------
    # batched updates (TseDatabase.apply_many)
    # ------------------------------------------------------------------

    def _op_apply_many(self, args) -> str:
        """One real ``db.apply_many`` batch vs the oracle.

        Every inner update resolves its blind indices against the
        *pre-batch* oracle state (batches contain only generic updates, so
        the schema is stable throughout) into an engine-level spec plus an
        oracle closure.  The real side then runs the whole batch through
        the batched API — single latch acquisition, one WAL group commit —
        and the outcomes must agree *as a batch*:

        * real applied everything → the oracle must apply every update
          (feeding real create OIDs in order);
        * real raised (rolling the whole batch back) → replaying the
          updates on a throwaway deep-copied shadow must hit an
          ``OracleReject`` somewhere, proving the oracle agrees the batch
          contained a rejected update; the shadow is discarded either way.
        """
        inner = [command_from_dict(d) for d in args["inner"]]
        specs: List[tuple] = []
        oracle_fns: List[Callable] = []
        for cmd in inner:
            built = self._prep_batch_item(cmd)
            if built is not None:
                spec, fn = built
                specs.append(spec)
                oracle_fns.append(fn)
        if not specs:
            return "skipped"
        if not self.batched:
            return self._apply_many_legacy(specs, oracle_fns)
        try:
            results = self.db.apply_many(specs, batched=self.batched)
        except TseError as exc:
            shadow = self.model.clone_for_updates()
            try:
                for index, fn in enumerate(oracle_fns):
                    fn(shadow, f"batch-dummy-{index}")
            except OracleReject:
                return "rejected"  # whole batch rolled back on both sides
            raise Divergence(
                "outcome",
                "apply_many",
                self.step,
                f"real rolled the batch back ({type(exc).__name__}: {exc}), "
                f"oracle applied all {len(specs)} updates",
            )
        for index, fn in enumerate(oracle_fns):
            try:
                fn(self.model, results[index])
            except OracleReject as exc:
                raise Divergence(
                    "outcome",
                    "apply_many",
                    self.step,
                    f"real applied the whole batch, oracle rejected update "
                    f"#{index}: {exc}",
                )
        return "applied"

    def _apply_many_legacy(
        self, specs: List[tuple], oracle_fns: List[Callable]
    ) -> str:
        """Before-mode batch: one update at a time, outcomes checked per
        item (``batched=False`` has no atomicity, so a rejected update
        leaves the already-applied prefix in place on both sides)."""
        rejected = 0
        for index, (spec, fn) in enumerate(zip(specs, oracle_fns)):
            try:
                value = self.db.apply_many([spec], batched=False)[0]
            except TseError as exc:
                shadow = self.model.clone_for_updates()
                try:
                    fn(shadow, f"batch-dummy-{index}")
                except OracleReject:
                    rejected += 1
                    continue
                raise Divergence(
                    "outcome",
                    "apply_many",
                    self.step,
                    f"real rejected update #{index} "
                    f"({type(exc).__name__}: {exc}), oracle applied it",
                )
            try:
                fn(self.model, value)
            except OracleReject as exc:
                raise Divergence(
                    "outcome",
                    "apply_many",
                    self.step,
                    f"real applied update #{index}, oracle rejected it: {exc}",
                )
        return "rejected" if rejected else "applied"

    def _prep_batch_item(self, command: Command):
        """Resolve one batch update into ``(engine_spec, oracle_fn)``.

        ``engine_spec`` is the ``(op, kwargs)`` pair ``apply_many`` feeds
        the update engine; ``oracle_fn(model, real_value)`` applies the
        same update to a reference model.  Name translation (view class →
        global class, visible property → underlying property) happens here
        because batches carry no schema changes — the pre-batch schema is
        the schema every update sees.  Returns ``None`` for an
        unresolvable reference (agreed skip, as in :meth:`_prepare`).
        """
        op, args = command.op, dict(command.args)
        view = self._r_view(args["view_i"])
        if view is None:
            return None
        if op == "create":
            cls = self._r_class(view, args["cls_i"])
            if cls is None:
                return None
            attrs = self.model.attribute_names(view, cls)
            assigns: Dict[str, object] = {}
            for i, value in args["assigns"]:
                if attrs:
                    assigns[attrs[i % len(attrs)]] = value
            handle = self.db.view(view)[cls]
            translated = {
                handle._underlying(name): value for name, value in assigns.items()
            }
            spec = ("create", {"class_name": handle.global_name, "assignments": translated})
            return spec, lambda model, value: model.create(view, cls, assigns, value)
        if op == "add":
            src = self._r_class(view, args["src_cls_i"])
            dest = self._r_class(view, args["cls_i"])
            if src is None or dest is None:
                return None
            oid = self._r_oid(view, src, args["obj_i"])
            if oid is None:
                return None
            global_dest = self.db.view(view)[dest].global_name
            spec = ("add", {"oids": [oid], "class_name": global_dest})
            return spec, lambda model, _value: model.add(view, dest, oid)
        if op == "remove":
            cls = self._r_class(view, args["cls_i"])
            if cls is None:
                return None
            oid = self._r_oid(view, cls, args["obj_i"])
            if oid is None:
                return None
            global_cls = self.db.view(view)[cls].global_name
            spec = ("remove", {"oids": [oid], "class_name": global_cls})
            return spec, lambda model, _value: model.remove(view, cls, oid)
        if op == "set":
            cls = self._r_class(view, args["cls_i"])
            if cls is None:
                return None
            oid = self._r_oid(view, cls, args["obj_i"])
            attr = self._r_attr(view, cls, args["attr_i"])
            if oid is None or attr is None:
                return None
            value = args["value"]
            handle = self.db.view(view)[cls]
            spec = (
                "set",
                {
                    "oids": [oid],
                    "class_name": handle.global_name,
                    "assignments": {handle._underlying(attr): value},
                },
            )
            return spec, lambda model, _value: model.set_values(
                view, cls, oid, {attr: value}
            )
        if op == "delete":
            cls = self._r_class(view, args["cls_i"])
            if cls is None:
                return None
            oid = self._r_oid(view, cls, args["obj_i"])
            if oid is None:
                return None

            def oracle_delete(model, _value, _oid=oid):
                # the engine rejects deleting a dead object (the whole
                # batch rolls back); RefModel.delete is a silent no-op, so
                # mirror the engine's liveness guard here
                if _oid not in model.objects:
                    raise OracleReject(f"object {_oid!r} is already deleted")
                model.delete(_oid)

            return ("delete", {"oids": [oid]}), oracle_delete
        raise ValueError(f"unexpected batch op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # lazy-migration drains
    # ------------------------------------------------------------------

    def _op_backfill_step(self, args) -> str:
        """Drain a bounded batch of pending epoch captures on the real
        side.  The oracle applies nothing: migration must be observably
        invisible, and the post-step equivalence sweep (plus any pinned
        ``reader_check``) is exactly that assertion.  Skipped when no
        session manager is attached yet or the mode is eager — both sides
        agree nothing happened."""
        manager = getattr(self.db, "_sessions", None)
        if manager is None or manager.migration is None:
            return "skipped"
        manager.migration.backfill_step(args.get("limit"))
        return "applied"

    # ------------------------------------------------------------------
    # reader sessions
    # ------------------------------------------------------------------

    def _ensure_sessions(self) -> None:
        self.db.sessions()
        self.model.attach_sessions()

    def _op_reader_open(self, args) -> str:
        slot = args["slot"] % READER_SLOTS
        self._ensure_sessions()
        old = self.readers.pop(slot, None)
        if old is not None:
            old.close()
            self.pins.pop(slot, None)
        session = self.db.sessions().reader()
        session.__enter__()
        self.readers[slot] = session
        self.pins[slot] = _copy_published(self.model.published)
        return "applied"

    def _op_reader_refresh(self, args) -> str:
        slot = args["slot"] % READER_SLOTS
        session = self.readers.get(slot)
        if session is None:
            return "skipped"
        session.refresh()
        self.pins[slot] = _copy_published(self.model.published)
        return "applied"

    def _op_reader_close(self, args) -> str:
        slot = args["slot"] % READER_SLOTS
        session = self.readers.pop(slot, None)
        if session is None:
            return "skipped"
        session.close()
        self.pins.pop(slot, None)
        return "applied"

    def _op_reader_check(self, args) -> str:
        slot = args["slot"] % READER_SLOTS
        session = self.readers.get(slot)
        if session is None:
            return "skipped"
        pin = self.pins[slot]
        try:
            if not session.verify():
                raise Divergence(
                    "reader", "reader_check", self.step,
                    f"slot {slot}: pinned epoch failed CRC verification",
                )
            for view, snap in sorted(pin.items()):
                if session.view_version(view) != snap["version"]:
                    raise Divergence(
                        "reader", "reader_check", self.step,
                        f"slot {slot}: {view!r} version "
                        f"{session.view_version(view)} != pinned {snap['version']}",
                    )
                if sorted(session.class_names(view)) != snap["classes"]:
                    raise Divergence(
                        "reader", "reader_check", self.step,
                        f"slot {slot}: {view!r} classes drifted from pin",
                    )
                for cls, extent in sorted(snap["extents"].items()):
                    if sorted(session.extent_oids(view, cls)) != extent:
                        raise Divergence(
                            "reader", "reader_check", self.step,
                            f"slot {slot}: {view!r}.{cls!r} extent drifted from pin",
                        )
                    if session.count(view, cls) != len(extent):
                        raise Divergence(
                            "reader", "reader_check", self.step,
                            f"slot {slot}: {view!r}.{cls!r} count != pinned extent",
                        )
        except TseError as exc:
            raise Divergence(
                "reader", "reader_check", self.step,
                f"slot {slot}: pinned read raised {type(exc).__name__}: {exc}",
            )
        return "applied"

    # ------------------------------------------------------------------
    # fleet simulation: version pins, rolling upgrades, retirement, merge
    # ------------------------------------------------------------------

    def _op_pin_view_version(self, args) -> str:
        """Bind an app slot to a (view, version) pin — the simulated app
        deploys against that schema version and keeps using it until a
        ``roll_app`` rebinds the slot."""
        app = args["app"] % APP_SLOTS
        view = self._r_view(args["view_i"])
        if view is None:
            return "skipped"
        version = self._pick(self.model.versions_of(view), args["version_sel"])
        if version is None:  # pragma: no cover - histories are never empty
            return "skipped"

        def real():
            self.db.view(view).pin(version)

        def oracle(_value):
            self.model._resolved(view, version)

        outcome = self._two_sided("pin_view_version", real, oracle)
        if outcome == "applied":
            self.apps[app] = (view, version)
        return outcome

    def _op_read_via_version(self, args) -> str:
        """Read every observable of the app's pinned view version and
        compare against the oracle's historical bindings over the live
        objects — the paper's never-upgraded application."""
        app = args["app"] % APP_SLOTS
        binding = self.apps.get(app)
        if binding is None:
            return "skipped"
        view, version = binding
        try:
            dump = self.db.view(view).pin(version).dump(self._dump_plans)
        except TseError as exc:
            raise Divergence(
                "pinned-read", "read_via_version", self.step,
                f"app {app}: pinned read of {view!r} v{version} raised "
                f"{type(exc).__name__}: {exc}",
            )
        oracle_dump = self.model.dump(view, version=version)
        if (
            dump["version"] != oracle_dump["version"]
            or sorted(dump["classes"]) != oracle_dump["classes"]
            or dump["by_class"] != oracle_dump["by_class"]
            or self._closure(dump["edges"])
            != self.model.anc_pairs(view, version)
        ):
            raise Divergence(
                "observe:pinned_dump", "read_via_version", self.step,
                f"app {app}: {view!r} v{version}: real {dump!r} != oracle "
                f"{oracle_dump!r}",
            )
        return "applied"

    def _op_write_via_version(self, args) -> str:
        """One generic update through the app's pinned handle.  Old views
        stay updatable; the post-step sweep asserts the write propagated to
        every *current* view (including merged ones), and a retired pin is
        an agreed rejection on both sides."""
        app = args["app"] % APP_SLOTS
        binding = self.apps.get(app)
        if binding is None:
            return "skipped"
        view, version = binding
        prep = self._prep_pinned_write(
            view, version, command_from_dict(args["inner"])
        )
        if prep is None:
            return "skipped"
        return self._two_sided("write_via_version", *prep)

    def _prep_pinned_write(self, view: str, version: int, inner: Command):
        """Resolve one update's blind indices against the oracle's bindings
        *at the pinned version* (class names, attribute aliases, and extents
        as that version sees them)."""
        model = self.model
        op, args = inner.op, dict(inner.args)
        cls = self._pick(model.class_names(view, version), args.get("cls_i", 0))
        if cls is None:
            return None  # pragma: no cover - views are never empty
        handle = lambda c: self.db.view(view).pin(version)[c]
        if op == "create":
            attrs = model.attribute_names(view, cls, version)
            assigns: Dict[str, object] = {}
            for i, value in args["assigns"]:
                if attrs:
                    assigns[attrs[i % len(attrs)]] = value

            def real():
                return handle(cls).create(**assigns).oid

            def oracle(oid):
                model.create(view, cls, assigns, oid, version=version)

            return real, oracle
        if op == "add":
            src = self._pick(
                model.class_names(view, version), args["src_cls_i"]
            )
            if src is None:
                return None  # pragma: no cover - views are never empty
            oid = self._pick(
                model.extent_oids(view, src, version), args["obj_i"]
            )
            if oid is None:
                return None

            def real():
                handle(src).get_object(oid).add_to(cls)

            def oracle(_value):
                model.add(view, cls, oid, version=version)

            return real, oracle
        oid = self._pick(model.extent_oids(view, cls, version), args["obj_i"])
        if oid is None:
            return None
        if op == "remove":

            def real():
                handle(cls).get_object(oid).remove_from(cls)

            def oracle(_value):
                model.remove(view, cls, oid, version=version)

            return real, oracle
        if op == "set":
            attr = self._pick(
                model.attribute_names(view, cls, version), args["attr_i"]
            )
            if attr is None:
                return None
            value = args["value"]

            def real():
                handle(cls).get_object(oid).set(attr, value)

            def oracle(_value):
                model.set_values(view, cls, oid, {attr: value}, version=version)

            return real, oracle
        if op == "delete":

            def real():
                handle(cls).get_object(oid).delete()

            def oracle(_value):
                model._check_writable(view, version)
                model.delete(oid)

            return real, oracle
        raise ValueError(f"unexpected pinned write {op!r}")  # pragma: no cover

    def _op_roll_app(self, args) -> str:
        """Rolling upgrade: rebind the app slot to the successor version.
        An app already on the newest version has nowhere to roll."""
        app = args["app"] % APP_SLOTS
        binding = self.apps.get(app)
        if binding is None:
            return "skipped"
        view, version = binding
        if version >= self.model.version(view):
            return "skipped"
        self.apps[app] = (view, version + 1)
        return "applied"

    def _op_retire_version(self, args) -> str:
        """Two-sided retirement, then a full version-lifecycle comparison
        (the rows ``versions()`` answers must match the oracle's)."""
        view = self._r_view(args["view_i"])
        if view is None:
            return "skipped"
        version = self._pick(self.model.versions_of(view), args["version_sel"])
        if version is None:  # pragma: no cover - histories are never empty
            return "skipped"

        def real():
            self.db.retire_view_version(view, version)

        def oracle(_value):
            self.model.retire_view(view, version)

        outcome = self._two_sided("retire_version", real, oracle)
        self._check_lifecycle("retire_version")
        return outcome

    def _check_lifecycle(self, op: str) -> None:
        real_rows = self.db.views.history.versions()
        oracle_rows = self.model.lifecycle_rows()
        if real_rows != oracle_rows:
            raise Divergence(
                "observe:lifecycle", op, self.step,
                f"real {real_rows!r} != oracle {oracle_rows!r}",
            )

    def _op_merge_views(self, args) -> str:
        """Section 7 version merging as a two-sided command; the post-step
        sweep then compares every observable of the merged view."""
        first = self._r_view(args["first_i"])
        second = self._r_view(args["second_i"])
        if first is None or second is None:
            return "skipped"
        first_version = second_version = None
        if args.get("pin_first"):
            first_version = self._pick(
                self.model.versions_of(first), args["first_sel"]
            )
        if args.get("pin_second"):
            second_version = self._pick(
                self.model.versions_of(second), args["second_sel"]
            )
        name = args["name"]

        def real():
            self.db.merge_views(
                first,
                second,
                name,
                first_version=first_version,
                second_version=second_version,
            )

        def oracle(_value):
            self.model.merge_views(
                first, second, name, first_version, second_version
            )

        return self._two_sided("merge_views", real, oracle)

    # ------------------------------------------------------------------
    # the per-step observable equivalence check
    # ------------------------------------------------------------------

    @staticmethod
    def _closure(edges) -> Set[Tuple[str, str]]:
        parents: Dict[str, Set[str]] = {}
        for sup, sub in edges:
            parents.setdefault(sub, set()).add(sup)
        pairs: Set[Tuple[str, str]] = set()
        for cls in set(parents):
            frontier = list(parents.get(cls, ()))
            seen: Set[str] = set()
            while frontier:
                anc = frontier.pop()
                if anc in seen:
                    continue
                seen.add(anc)
                pairs.add((anc, cls))
                frontier.extend(parents.get(anc, ()))
        return pairs

    def _check_equivalence(self, op: str) -> None:
        """Compare every observable of every view against the oracle.

        The bulk sweep (default) reads each view through one
        ``ViewHandle.dump()`` — a single latched resolution per view — and
        compares the result; the slow sweep walks the per-call accessor
        surface (one handle call per observable, one ``get_object`` per
        member).  Both check the same observables; the slow path survives
        as the hot-path benchmark's "before" mode and as a cross-check
        that the bulk reader answers exactly what the accessors do.
        """
        def div(what: str, detail: str):
            raise Divergence(f"observe:{what}", op, self.step, detail)

        # Skip the sweep when neither side changed since the last *passing*
        # sweep: the real side's schema/pool generation counters cover every
        # schema change and every membership/value mutation, the oracle's
        # mutation counter covers its whole observable surface, and the
        # incarnation number changes whenever a recovered database is
        # swapped in (its counters could coincide with the dead one's).
        state_key = (
            self._db_incarnation,
            self.db.schema.generation,
            self.db.pool.generation,
            self.model.mutations,
        )
        if self.bulk_sweep and state_key == self._last_sweep_key:
            return

        real_views = sorted(self.db.view_names())
        if real_views != self.model.view_names():
            div("views", f"real {real_views} != oracle {self.model.view_names()}")
        real_rows = self.db.views.history.versions()
        oracle_rows = self.model.lifecycle_rows()
        if real_rows != oracle_rows:
            div("lifecycle", f"real {real_rows!r} != oracle {oracle_rows!r}")
        for view in real_views:
            handle = self.db.view(view)
            if self.bulk_sweep:
                dump = handle.dump(self._dump_plans)
                oracle_dump = self.model.dump(view)
                if (
                    dump["version"] == oracle_dump["version"]
                    and sorted(dump["classes"]) == oracle_dump["classes"]
                    and dump["by_class"] == oracle_dump["by_class"]
                    and self._closure(dump["edges"]) == self.model.anc_pairs(view)
                ):
                    continue  # everything agrees; skip the drill-down
                real_classes = sorted(dump["classes"])
                real_version = dump["version"]
                real_edges = dump["edges"]
            else:
                dump = None
                real_classes = sorted(handle.class_names())
                real_version = handle.version
                real_edges = handle.edges()
            if real_classes != self.model.class_names(view):
                div(
                    "classes",
                    f"{view!r}: real {real_classes} != oracle "
                    f"{self.model.class_names(view)}",
                )
            if real_version != self.model.version(view):
                div(
                    "version",
                    f"{view!r}: real v{real_version} != oracle "
                    f"v{self.model.version(view)}",
                )
            real_pairs = self._closure(real_edges)
            oracle_pairs = self.model.anc_pairs(view)
            if real_pairs != oracle_pairs:
                div(
                    "edges",
                    f"{view!r}: is-a closure differs: real-only "
                    f"{sorted(real_pairs - oracle_pairs)}, oracle-only "
                    f"{sorted(oracle_pairs - real_pairs)}",
                )
            for cls in real_classes:
                if dump is not None:
                    entry = dump["by_class"][cls]
                    real_attrs = entry["attributes"]
                    real_methods = entry["methods"]
                    real_extent = entry["extent"]
                    real_count = entry["count"]
                    real_objects = entry["objects"]
                else:
                    cls_handle = handle[cls]
                    real_attrs = sorted(cls_handle.attribute_names())
                    real_methods = sorted(cls_handle.method_names())
                    real_extent = sorted(cls_handle.extent_oids())
                    real_count = cls_handle.count()
                    real_objects = None
                if real_attrs != self.model.attribute_names(view, cls):
                    div(
                        "attributes",
                        f"{view!r}.{cls!r}: real {real_attrs} != oracle "
                        f"{self.model.attribute_names(view, cls)}",
                    )
                if real_methods != self.model.method_names(view, cls):
                    div(
                        "methods",
                        f"{view!r}.{cls!r}: real {real_methods} != oracle "
                        f"{self.model.method_names(view, cls)}",
                    )
                extent = self.model.extent_oids(view, cls)
                if real_extent != extent:
                    div(
                        "extent",
                        f"{view!r}.{cls!r}: real {real_extent} != oracle {extent}",
                    )
                if real_count != len(extent):
                    div(
                        "count",
                        f"{view!r}.{cls!r}: count {real_count} != {len(extent)}",
                    )
                for oid in extent:
                    if real_objects is not None:
                        real_values = real_objects[oid]
                    else:
                        real_values = cls_handle.get_object(oid).values()
                    oracle_values = self.model.object_values(view, cls, oid)
                    if real_values != oracle_values:
                        div(
                            "values",
                            f"{view!r}.{cls!r} object {oid}: real {real_values} "
                            f"!= oracle {oracle_values}",
                        )
        self._last_sweep_key = state_key


class _AbortTxn(Exception):
    """Sentinel that rolls a fuzzed savepoint back."""


# ---------------------------------------------------------------------------
# standalone drivers
# ---------------------------------------------------------------------------


def run_commands(
    commands: List[Command], wal_dir=None, migration_mode: Optional[str] = None
) -> Optional[Divergence]:
    """Replay an explicit command list; return the first divergence (or
    ``None``).  Used by corpus replays and ddmin probes."""
    harness = DifferentialHarness(wal_dir, migration_mode=migration_mode)
    try:
        for command in commands:
            harness.apply(command)
        return None
    except Divergence as divergence:
        return divergence
    finally:
        harness.close()


def run_sequence(
    seed: int,
    length: int = 20,
    config: Optional[dict] = None,
    wal_dir=None,
    migration_mode: Optional[str] = None,
) -> Tuple[List[Command], Optional[Divergence]]:
    """Generate and run one seeded random sequence (setup prefix plus
    ``length`` random commands); return ``(commands, divergence_or_None)``."""
    generator = CommandGenerator(seed, config)
    commands = generator.generate(length)
    return commands, run_commands(
        commands, wal_dir=wal_dir, migration_mode=migration_mode
    )


# ---------------------------------------------------------------------------
# Hypothesis stateful wrapper
# ---------------------------------------------------------------------------

try:  # pragma: no cover - import guard
    import hypothesis.strategies as st
    from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

    _MACHINE_OPS = sorted(set(c.op for c in CommandGenerator(0).generate(0)) | {
        "create", "add", "remove", "set", "delete", "txn", "apply_many",
        "checkpoint", "crash", "recover_clean",
        "reader_open", "reader_check", "reader_refresh", "reader_close",
        "define_class", "create_view",
    } | set(SCHEMA_OPS) | set(MIGRATION_OPS) | set(VERSION_OPS))

    class DifferentialMachine(RuleBasedStateMachine):
        """Hypothesis drives op choice and per-step randomness; the harness
        checks real-vs-oracle equivalence after every rule."""

        def __init__(self):
            super().__init__()
            self.harness = DifferentialHarness()
            self.generator = CommandGenerator(0)

        @initialize()
        def setup(self):
            for command in self.generator.setup_commands():
                self.harness.apply(command)

        @rule(
            op=st.sampled_from(_MACHINE_OPS),
            salt=st.integers(min_value=0, max_value=2**32 - 1),
        )
        def step(self, op, salt):
            command = self.generator.gen_op(op, random.Random(salt))
            self.harness.apply(command)

        def teardown(self):
            self.harness.close()

except ImportError:  # pragma: no cover - hypothesis is an optional dep
    DifferentialMachine = None
