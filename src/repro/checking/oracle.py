"""A naive executable reference model of the TSE observable semantics.

The model (:class:`RefModel`) answers the same observable questions as the
real system — view class names, is-a reachability, extent membership,
attribute/method name sets, attribute reads through a view class — but is
implemented as flatly as possible:

* classes are tiny :class:`Token` records wired into an expression graph;
* extents are **recomputed from scratch** on every query by walking that
  graph down to direct base-class memberships (no incremental maintenance,
  no caches that survive a mutation);
* view schemas are plain name→token dicts plus an ancestor-set per class
  (no classifier: the reachability consequences of every schema change are
  written out longhand from the paper's section 6 definitions);
* there is no WAL, no slicing, no object store — objects are entries in one
  dict of ``oid → set of base tokens`` and values live in a flat
  ``(oid, attribute) → value`` dict.

The model deliberately assumes the **globally-unique property name**
discipline the command generator enforces: every attribute/method name is
introduced at most once across the whole run.  Under that discipline
property identity collapses to name equality, which is what keeps the
reference semantics flat (no identity bookkeeping, no ambiguity handling,
no suppressed-definition restoration).  The differential runner's command
generator never reuses a name, so the restriction costs no coverage of the
paper's core semantics; the overriding/ambiguity corners are exercised by
the hand-written translator suites instead.

Every mutating method either applies completely or raises
:class:`OracleReject` leaving the model untouched (validation happens
before mutation; the generic updates roll back their tentative writes
exactly like the real engine does).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


class OracleReject(Exception):
    """The reference model refuses the operation (mirrors ``TseError``)."""


def _oid_key(o):
    """Sort key for extent members: real ``Oid``s order by their int value
    (C-level, instead of the Python-level ``Oid.__lt__`` per comparison);
    placeholder tuples and dummy strings order by themselves, preserving the
    plain ``sorted()`` behaviour for homogeneous non-Oid extents."""
    return getattr(o, "value", o)


@dataclass(frozen=True)
class Spec:
    """One property definition (globally unique name)."""

    name: str
    kind: str = "attr"  # "attr" | "method"
    domain: str = "any"
    required: bool = False
    default: object = None


class Token:
    """One class node in the reference expression graph.

    ``kind == "base"`` tokens model base classes: they carry local property
    names, base parents/children, and direct object memberships attach to
    them.  Derived tokens model the virtual classes evolution creates and
    carry an algebra op over source tokens.  Tokens are immutable once
    created; evolution replaces a view's *binding* to a token, never the
    token itself — exactly the paper's copy-on-evolution story.
    """

    _ids = itertools.count()

    def __init__(
        self,
        kind: str,
        name: str = "",
        parents: Tuple["Token", ...] = (),
        local: Tuple[str, ...] = (),
        op: str = "",
        sources: Tuple["Token", ...] = (),
        new: Tuple[str, ...] = (),
        shared: Tuple[str, ...] = (),
        hidden: FrozenSet[str] = frozenset(),
        propagation: Optional["Token"] = None,
    ) -> None:
        self.id = next(Token._ids)
        self.kind = kind
        self.name = name or f"t{self.id}"
        self.parents = parents
        self.children: List["Token"] = []
        self.local = local
        self.op = op
        self.sources = sources
        self.new = new
        self.shared = shared
        self.hidden = hidden
        self.propagation = propagation
        #: the real schema names a replacement by priming the replaced
        #: class (footnote 11: ``K2`` -> ``K2'`` -> ``K2''``), so a global
        #: name is a lineage prefix plus primes, and primes grow with
        #: creation order.  (lineage, id) therefore sorts exactly like the
        #: real sorted-global-name order: same lineage -> creation order;
        #: different lineages -> prefix order (a prime sorts below every
        #: identifier character).  Merge claim ordering depends on this.
        if kind == "base" or name:
            self.lineage = self.name
        elif sources:
            self.lineage = sources[0].lineage
        else:  # pragma: no cover - derived tokens always have sources
            self.lineage = self.name
        for parent in parents:
            parent.children.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "base":
            return f"<base {self.name}>"
        return f"<{self.op} {self.name}>"


@dataclass
class ViewState:
    """One view: bindings, reachability, per-class property aliases."""

    version: int = 1
    token: Dict[str, Token] = field(default_factory=dict)
    #: strict ancestors per view class, in view-visible names
    anc: Dict[str, Set[str]] = field(default_factory=dict)
    #: per view class: visible property name -> underlying name
    aliases: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: frozen copies of every registered version (including the current
    #: one), keyed by version number — the oracle twin of the real
    #: ``ViewSchemaHistory`` chain.  Pinned reads resolve historical
    #: bindings here over the *live* shared objects, exactly like a pinned
    #: ``ViewHandle``.
    history: Dict[int, "ViewState"] = field(default_factory=dict)
    #: True for views produced by section-7 version merging (and their
    #: successors).  Only such views can select two classes that are the
    #: same *global* class under different names, so only they need the
    #: post-evolution dedup-collapse check.
    merged: bool = False

    def snapshot(self) -> "ViewState":
        """An immutable-in-practice copy of the current bindings (tokens
        are shared — they never mutate — but the per-view containers the
        evolution ops update in place are copied)."""
        return ViewState(
            version=self.version,
            token=dict(self.token),
            anc={cls: set(ancestors) for cls, ancestors in self.anc.items()},
            aliases={cls: dict(per) for cls, per in self.aliases.items()},
            merged=self.merged,
        )

    def direct_edges(self) -> Set[Tuple[str, str]]:
        """Transitive reduction of the ancestor relation."""
        edges = set()
        for cls, ancestors in self.anc.items():
            for a in ancestors:
                if not any(
                    mid != a and mid != cls and a in self.anc.get(mid, set())
                    for mid in ancestors
                ):
                    edges.add((a, cls))
        return edges

    def descendants(self, cls: str) -> Set[str]:
        return {c for c, ancestors in self.anc.items() if cls in ancestors}


class RefModel:
    """The naive reference database the differential runner checks against."""

    def __init__(self) -> None:
        self.specs: Dict[str, Spec] = {}
        self.global_names: Set[str] = set()
        self.base: Dict[str, Token] = {}
        #: names authored through define_class, in authoring order — the
        #: stable address space command indices resolve against
        self.user_bases: List[str] = []
        self.objects: Dict[object, Set[Token]] = {}
        self.values: Dict[Tuple[object, str], object] = {}
        self.views: Dict[str, ViewState] = {}
        #: versions the operators declared vacated (oracle twin of the real
        #: history's retirement set): view name -> retired version numbers
        self.retired: Dict[str, Set[int]] = {}
        # -- the mirrored global schema DAG (consulted only by merge_views) --
        # every token in creation order; registration into the dup-free
        # canonical registry is deferred until a merge actually needs global
        # identity, then replayed in this exact order (matching the real
        # classifier, which integrates classes as they are derived)
        self._created: List[Token] = []
        self._reg_cursor = 0
        self._registry: List[Token] = []
        self._reg_sig: Dict[int, tuple] = {}
        self._canon_memo: Dict[int, Token] = {}
        self._dag_parents: Dict[int, Set[Token]] = {}
        self.sessions_attached = False
        #: last published epoch: view -> {"version", "classes", "extents"}
        self.published: Dict[str, dict] = {}
        self._placeholders = itertools.count()
        #: monotone counter: bumped on every observable mutation so callers
        #: (the differential harness) can skip redundant equivalence sweeps
        self.mutations = 0
        self._extent_memo: Dict[Token, FrozenSet[object]] = {}
        self._types_memo: Dict[Token, FrozenSet[str]] = {}
        self._cone_memo: Dict[Token, FrozenSet[Token]] = {}

    def _touch(self) -> None:
        """Record a structural mutation: invalidate memos, bump the counter.

        The memos are *per-state* caches, not incremental structures — any
        change to object membership or to the token graph simply wipes them.
        Correct because every mutating public method calls ``_touch`` after
        the mutation (including rollback branches), so a memo entry can only
        be observed between mutations, when it is trivially fresh.
        """
        self.mutations += 1
        self._extent_memo.clear()
        self._types_memo.clear()
        self._cone_memo.clear()

    def clone_for_updates(self) -> "RefModel":
        """A cheap copy that tolerates *update* operations only.

        ``create``/``add``/``remove``/``set_values``/``delete`` mutate just
        ``objects`` and ``values``, so the clone deep-copies those two maps
        and shares the (immutable-under-updates) schema structures: specs,
        tokens, views, published epochs.  Used for shadow replays (aborted
        transactions, rejected batches) where ``copy.deepcopy`` of the whole
        model dominated the runtime.  Applying a *schema* operation to the
        clone would corrupt the original — callers must not do that.
        """
        clone = RefModel.__new__(RefModel)
        clone.__dict__.update(self.__dict__)
        clone.objects = {oid: set(tokens) for oid, tokens in self.objects.items()}
        clone.values = dict(self.values)
        clone._placeholders = itertools.count()
        clone._extent_memo = {}
        clone._types_memo = {}
        clone._cone_memo = {}
        return clone

    # ------------------------------------------------------------------
    # type and extent evaluation (from scratch on each mutation, memoised
    # between mutations — the harness sweep reads every class of every
    # view after every command, so intra-state reuse is the common case)
    # ------------------------------------------------------------------

    def type_names(self, token: Token) -> FrozenSet[str]:
        cached = self._types_memo.get(token)
        if cached is not None:
            return cached
        names = self._type_names_uncached(token)
        self._types_memo[token] = names
        return names

    def _type_names_uncached(self, token: Token) -> FrozenSet[str]:
        if token.kind == "base":
            names: Set[str] = set(token.local)
            for parent in token.parents:
                names |= self.type_names(parent)
            return frozenset(names)
        if token.op == "refine":
            return self.type_names(token.sources[0]) | set(token.new) | set(
                token.shared
            )
        if token.op == "hide":
            return self.type_names(token.sources[0]) - token.hidden
        if token.op == "union":
            return self.type_names(token.sources[0]) & self.type_names(
                token.sources[1]
            )
        if token.op == "difference":
            return self.type_names(token.sources[0])
        if token.op == "intersect":
            return self.type_names(token.sources[0]) | self.type_names(
                token.sources[1]
            )
        raise AssertionError(f"unhandled op {token.op!r}")  # pragma: no cover

    def _base_cone(self, token: Token) -> FrozenSet[Token]:
        """``token`` plus its base descendants (membership feeds upward)."""
        cached = self._cone_memo.get(token)
        if cached is not None:
            return cached
        cone: Set[Token] = set()
        frontier = [token]
        while frontier:
            current = frontier.pop()
            if current in cone:
                continue
            cone.add(current)
            frontier.extend(current.children)
        frozen = frozenset(cone)
        self._cone_memo[token] = frozen
        return frozen

    def extent(self, token: Token) -> FrozenSet[object]:
        cached = self._extent_memo.get(token)
        if cached is not None:
            return cached
        result = self._extent_uncached(token)
        self._extent_memo[token] = result
        return result

    def _extent_uncached(self, token: Token) -> FrozenSet[object]:
        if token.kind == "base":
            cone = self._base_cone(token)
            return frozenset(
                oid for oid, members in self.objects.items() if members & cone
            )
        first = self.extent(token.sources[0])
        if token.op in ("refine", "hide"):
            return first
        second = self.extent(token.sources[1])
        if token.op == "union":
            return first | second
        if token.op == "difference":
            return first - second
        if token.op == "intersect":
            return first & second
        raise AssertionError(f"unhandled op {token.op!r}")  # pragma: no cover

    # -- section 3.4 routing --------------------------------------------------

    def insertion_targets(self, token: Token) -> FrozenSet[Token]:
        if token.kind == "base":
            return frozenset({token})
        if token.op in ("refine", "hide", "difference"):
            return self.insertion_targets(token.sources[0])
        if token.op == "union":
            chosen = token.propagation or token.sources[0]
            return self.insertion_targets(chosen)
        if token.op == "intersect":
            return self.insertion_targets(token.sources[0]) | self.insertion_targets(
                token.sources[1]
            )
        raise AssertionError(f"unhandled op {token.op!r}")  # pragma: no cover

    def removal_targets(self, token: Token) -> FrozenSet[Token]:
        if token.kind == "base":
            return frozenset({token})
        if token.op in ("refine", "hide", "difference"):
            return self.removal_targets(token.sources[0])
        if token.op in ("union", "intersect"):
            return self.removal_targets(token.sources[0]) | self.removal_targets(
                token.sources[1]
            )
        raise AssertionError(f"unhandled op {token.op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # observables (the surface the runner compares)
    # ------------------------------------------------------------------

    def view_names(self) -> List[str]:
        return sorted(self.views)

    def _view(self, view: str) -> ViewState:
        state = self.views.get(view)
        if state is None:
            raise OracleReject(f"unknown view {view!r}")
        return state

    def _resolved(self, view: str, version: Optional[int] = None) -> ViewState:
        """The current bindings, or — for a pinned access — the frozen
        snapshot of a historical version (the oracle twin of the real
        ``ViewSchemaHistory.version`` lookup)."""
        state = self._view(view)
        if version is None or version == state.version:
            return state
        snap = state.history.get(version)
        if snap is None:
            raise OracleReject(f"view {view!r} has no version {version}")
        return snap

    def _token(self, view: str, cls: str, version: Optional[int] = None) -> Token:
        state = self._resolved(view, version)
        token = state.token.get(cls)
        if token is None:
            raise OracleReject(f"view {view!r} has no class {cls!r}")
        return token

    def class_names(self, view: str, version: Optional[int] = None) -> List[str]:
        return sorted(self._resolved(view, version).token)

    def version(self, view: str) -> int:
        return self._view(view).version

    def versions_of(self, view: str) -> List[int]:
        """Every registered version number, ascending (the current one
        included) — the address space pin/retire commands resolve against."""
        return sorted(self._view(view).history)

    def anc_pairs(
        self, view: str, version: Optional[int] = None
    ) -> Set[Tuple[str, str]]:
        state = self._resolved(view, version)
        return {(a, c) for c, ancestors in state.anc.items() for a in ancestors}

    def ancestors(self, view: str, cls: str) -> List[str]:
        """Sorted strict ancestors of ``cls`` within the view."""
        self._token(view, cls)
        return sorted(self._view(view).anc[cls])

    def extent_oids(
        self, view: str, cls: str, version: Optional[int] = None
    ) -> List[object]:
        return sorted(self.extent(self._token(view, cls, version)), key=_oid_key)

    def _alias_of(
        self, view: str, cls: str, underlying: str, version: Optional[int] = None
    ) -> str:
        per_class = self._resolved(view, version).aliases.get(cls, {})
        for alias, original in per_class.items():
            if original == underlying:
                return alias
        return underlying

    def _underlying_of(
        self, view: str, cls: str, visible: str, version: Optional[int] = None
    ) -> str:
        return (
            self._resolved(view, version).aliases.get(cls, {}).get(visible, visible)
        )

    def attribute_names(
        self, view: str, cls: str, version: Optional[int] = None
    ) -> List[str]:
        token = self._token(view, cls, version)
        return sorted(
            self._alias_of(view, cls, name, version)
            for name in self.type_names(token)
            if self.specs[name].kind == "attr"
        )

    def method_names(
        self, view: str, cls: str, version: Optional[int] = None
    ) -> List[str]:
        token = self._token(view, cls, version)
        return sorted(
            self._alias_of(view, cls, name, version)
            for name in self.type_names(token)
            if self.specs[name].kind == "method"
        )

    def object_values(self, view: str, cls: str, oid: object) -> Dict[str, object]:
        token = self._token(view, cls)
        result: Dict[str, object] = {}
        for name in self.type_names(token):
            spec = self.specs[name]
            if spec.kind != "attr":
                continue
            alias = self._alias_of(view, cls, name)
            result[alias] = self.values.get((oid, name), spec.default)
        return result

    def dump(self, view: str, version: Optional[int] = None) -> Dict[str, object]:
        """Every per-class observable of ``view`` in one pass.

        The same shape as ``ViewHandle.dump()['by_class']`` plus the
        version: the runner compares the two wholesale (one dict equality
        in the common all-agreeing case) instead of re-deriving aliases
        and extents once per observable accessor.  With ``version`` the
        historical bindings are read over the live objects — the pinned
        handle semantics.
        """
        state = self._resolved(view, version)
        by_class: Dict[str, dict] = {}
        for cls, token in state.token.items():
            per_class = state.aliases.get(cls, {})
            inverse: Dict[str, str] = {}
            for alias, original in per_class.items():
                inverse.setdefault(original, alias)
            attrs: List[str] = []
            methods: List[str] = []
            columns = []  # (visible alias, underlying name, declared default)
            for name in self.type_names(token):
                spec = self.specs[name]
                alias = inverse.get(name, name)
                if spec.kind == "attr":
                    attrs.append(alias)
                    columns.append((alias, name, spec.default))
                else:
                    methods.append(alias)
            extent = sorted(self.extent(token), key=_oid_key)
            values = self.values
            objects = {
                oid: {
                    alias: values.get((oid, name), default)
                    for alias, name, default in columns
                }
                for oid in extent
            }
            by_class[cls] = {
                "attributes": sorted(attrs),
                "methods": sorted(methods),
                "extent": extent,
                "count": len(extent),
                "objects": objects,
            }
        return {
            "version": state.version,
            "classes": sorted(state.token),
            "by_class": by_class,
        }

    # -- epoch publication (readers pin these) --------------------------------

    def snapshot_published(self) -> Dict[str, dict]:
        snap: Dict[str, dict] = {}
        for view, state in self.views.items():
            snap[view] = {
                "version": state.version,
                "classes": sorted(state.token),
                "extents": {
                    cls: self.extent_oids(view, cls) for cls in state.token
                },
            }
        return snap

    def publish(self) -> None:
        if self.sessions_attached:
            self.published = self.snapshot_published()

    def attach_sessions(self) -> None:
        if not self.sessions_attached:
            self.sessions_attached = True
            self.publish()

    # -- version lifecycle (retirement; mirrors views/history.py) -------------

    def retire_view(self, view: str, version: int) -> None:
        """Mirror of ``ViewSchemaHistory.retire``: unknown views/versions,
        the current version, and double retirement are all refused."""
        state = self._view(view)
        if version not in state.history:
            raise OracleReject(f"view {view!r} has no version {version}")
        if version == state.version:
            raise OracleReject(
                f"view {view!r} version {version} is current and cannot retire"
            )
        retired = self.retired.setdefault(view, set())
        if version in retired:
            raise OracleReject(
                f"view {view!r} version {version} is already retired"
            )
        retired.add(version)

    def is_retired(self, view: str, version: int) -> bool:
        return version in self.retired.get(view, set())

    def _check_writable(self, view: str, version: Optional[int]) -> None:
        """Writes through a retired pinned version are refused (reads stay
        legal) — the oracle twin of the handle-level retirement guard."""
        if version is not None and self.is_retired(view, version):
            raise OracleReject(
                f"view {view!r} version {version} is retired for writes"
            )

    def lifecycle_rows(self, view: Optional[str] = None) -> List[Dict[str, object]]:
        """The same rows ``ViewSchemaHistory.versions()`` answers."""
        names = [view] if view is not None else self.view_names()
        rows: List[Dict[str, object]] = []
        for name in names:
            state = self._view(name)
            for number in sorted(state.history):
                rows.append(
                    {
                        "view": name,
                        "version": number,
                        "current": number == state.version,
                        "retired": self.is_retired(name, number),
                    }
                )
        return rows

    # ------------------------------------------------------------------
    # the mirrored global schema DAG (section 7 support)
    #
    # The real system integrates every derived class into ONE global
    # schema: the classifier deduplicates equivalent classes and positions
    # the survivors in the DAG.  Per-view observables never needed that
    # mirror — each view's reachability is maintained longhand — but
    # version *merging* does: a merged view unifies classes that are "the
    # same global class" and inherits the global DAG's ancestry over its
    # selection.  The mirror is consulted only by :meth:`merge_views`;
    # tokens are recorded at creation (cheap) and registered lazily, in
    # creation order, exactly as the real classifier saw them.
    # ------------------------------------------------------------------

    def _new_token(self, *args, **kwargs) -> Token:
        token = Token(*args, **kwargs)
        self._created.append(token)
        return token

    def _ensure_registry(self) -> None:
        while self._reg_cursor < len(self._created):
            token = self._created[self._reg_cursor]
            self._reg_cursor += 1
            self._register(token)

    def _canon_of(self, token: Token) -> Token:
        """The canonical (dedup survivor) token ``token`` resolves to in
        the mirrored global schema.  Only valid after `_ensure_registry`."""
        return self._canon_memo.get(id(token), token)

    def _der_sig(self, token: Token) -> tuple:
        """Mirror of ``Derivation.signature()``: op plus canonicalised
        sources plus the property deltas."""
        return (
            token.op,
            tuple(id(self._canon_of(s)) for s in token.sources),
            tuple(token.new),
            tuple(token.shared),
            tuple(sorted(token.hidden)),
        )

    def _register(self, token: Token) -> None:
        if token.kind == "base":
            # base classes are declared, never classified: their DAG
            # parents are exactly the declared ones, and they never dedup
            self._canon_memo[id(token)] = token
            self._dag_parents[id(token)] = set(token.parents)
            self._registry.append(token)
            return
        sig = self._der_sig(token)
        # duplicate detection, mirroring Classifier._find_duplicate: an
        # identical derivation, or an equal type with provably equal
        # extent.  The registry is dup-free, so at most one entry matches.
        for other in self._registry:
            if other.kind != "base" and self._reg_sig[id(other)] == sig:
                self._canon_memo[id(token)] = other
                return
        my_types = self.type_names(token)
        for other in self._registry:
            if (
                self.type_names(other) == my_types
                and self._subsumed(token, other)
                and self._subsumed(other, token)
            ):
                self._canon_memo[id(token)] = other
                return
        self._canon_memo[id(token)] = token
        self._reg_sig[id(token)] = sig
        self._place(token, my_types)
        self._registry.append(token)

    def _dag_ancestors(self, token: Token) -> Set[Token]:
        result: Set[Token] = set()
        frontier = list(self._dag_parents.get(id(token), ()))
        while frontier:
            parent = frontier.pop()
            if parent in result:
                continue
            result.add(parent)
            frontier.extend(self._dag_parents.get(id(parent), ()))
        return result

    def _place(self, token: Token, my_types: FrozenSet[str]) -> None:
        """Mirror of classifier positioning: direct supers are the minimal
        candidates that subsume the newcomer, direct subs the maximal ones
        it subsumes.  Transitive-edge removal is skipped — the merge model
        only ever asks for reachability, which removal never changes."""
        supers: List[Token] = []
        subs: List[Token] = []
        for other in self._registry:
            other_types = self.type_names(other)
            if other_types <= my_types and self._subsumed(token, other):
                supers.append(other)
            if my_types <= other_types and self._subsumed(other, token):
                subs.append(other)
        anc_memo = {c: self._dag_ancestors(c) for c in set(supers) | set(subs)}
        chosen_supers = {
            c
            for c in supers
            if not any(other is not c and c in anc_memo[other] for other in supers)
        }
        self._dag_parents[id(token)] = chosen_supers
        for sub in subs:
            if any(other is not sub and other in anc_memo[sub] for other in subs):
                continue  # not maximal
            if sub is token or sub in self._dag_ancestors(token):
                continue  # pragma: no cover - cycle guard, mirrors classifier
            self._dag_parents.setdefault(id(sub), set()).add(token)

    # ------------------------------------------------------------------
    # authoring (setup commands)
    # ------------------------------------------------------------------

    def define_class(
        self, name: str, attrs: Sequence[Spec], inherits_from: Sequence[str] = ()
    ) -> None:
        if name in self.global_names:
            raise OracleReject(f"class {name!r} already defined")
        parents = []
        for parent in inherits_from:
            if parent not in self.base:
                raise OracleReject(f"unknown parent {parent!r}")
            parents.append(self.base[parent])
        for spec in attrs:
            if spec.name in self.specs:
                raise OracleReject(f"property name {spec.name!r} already used")
        for spec in attrs:
            self.specs[spec.name] = spec
        token = self._new_token(
            "base",
            name=name,
            parents=tuple(parents),
            local=tuple(s.name for s in attrs),
        )
        self.base[name] = token
        self.global_names.add(name)
        self.user_bases.append(name)
        self._touch()

    def create_view(self, name: str, classes: Sequence[str]) -> None:
        if name in self.views:
            raise OracleReject(f"view {name!r} already exists")
        for cls in classes:
            if cls not in self.base:
                raise OracleReject(f"view selects unknown class {cls!r}")
        state = ViewState()
        selection = set(classes)
        for cls in classes:
            token = self.base[cls]
            state.token[cls] = token
            ancestors: Set[str] = set()
            frontier = list(token.parents)
            seen: Set[Token] = set()
            while frontier:
                parent = frontier.pop()
                if parent in seen:
                    continue
                seen.add(parent)
                if parent.name in selection:
                    ancestors.add(parent.name)
                frontier.extend(parent.parents)
            state.anc[cls] = ancestors
        state.history[1] = state.snapshot()
        self.views[name] = state
        self._touch()

    # ------------------------------------------------------------------
    # generic updates (section 3.3/3.4)
    # ------------------------------------------------------------------

    def _check_assignable(
        self,
        view: str,
        cls: str,
        token: Token,
        visible: str,
        version: Optional[int] = None,
    ) -> str:
        underlying = self._underlying_of(view, cls, visible, version)
        if underlying not in self.type_names(token):
            raise OracleReject(f"unknown property {visible!r} in {cls!r}")
        if self.specs[underlying].kind != "attr":
            raise OracleReject(f"{visible!r} of {cls!r} is not an attribute")
        return underlying

    def create(
        self,
        view: str,
        cls: str,
        assignments: Dict[str, object],
        oid: object,
        version: Optional[int] = None,
    ) -> object:
        self._check_writable(view, version)
        token = self._token(view, cls, version)
        targets = self.insertion_targets(token)
        translated = {
            self._check_assignable(view, cls, token, visible, version): value
            for visible, value in assignments.items()
        }
        for target in targets:
            for name in self.type_names(target):
                spec = self.specs[name]
                if (
                    spec.kind == "attr"
                    and spec.required
                    and name not in translated
                    and spec.default is None
                ):
                    raise OracleReject(
                        f"required attribute {name!r} received no value"
                    )
        if oid is None:
            oid = ("placeholder", next(self._placeholders))
        self.objects[oid] = set(targets)
        for name, value in translated.items():
            self.values[(oid, name)] = value
        self._touch()
        if oid not in self.extent(token):
            del self.objects[oid]
            for name in translated:
                self.values.pop((oid, name), None)
            self._touch()
            raise OracleReject("value-closure violation on create")
        return oid

    def add(
        self, view: str, cls: str, oid: object, version: Optional[int] = None
    ) -> None:
        self._check_writable(view, version)
        token = self._token(view, cls, version)
        targets = self.insertion_targets(token)
        members = self.objects.get(oid)
        if members is None:
            raise OracleReject(f"unknown object {oid!r}")
        added = [t for t in targets if t not in members]
        members.update(added)
        self._touch()
        if oid not in self.extent(token):
            members.difference_update(added)
            self._touch()
            raise OracleReject("value-closure violation on add")

    @staticmethod
    def _base_ancestors_or_self(token: Token) -> Set[Token]:
        result: Set[Token] = set()
        frontier = [token]
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(current.parents)
        return result

    def remove(
        self, view: str, cls: str, oid: object, version: Optional[int] = None
    ) -> None:
        self._check_writable(view, version)
        token = self._token(view, cls, version)
        if oid not in self.extent(token):
            raise OracleReject(f"{oid!r} is not a member of {cls!r}")
        members = self.objects[oid]
        removable = [t for t in self.removal_targets(token) if t in members]
        if not removable:
            raise OracleReject(f"{oid!r} has no direct membership to remove")
        members.difference_update(removable)
        # values stored at a removed class survive only while the object
        # still has that class's type through some remaining membership
        kept_types: Set[Token] = set()
        for member in members:
            kept_types |= self._base_ancestors_or_self(member)
        for removed in removable:
            if removed not in kept_types:
                for name in removed.local:
                    self.values.pop((oid, name), None)
        self._touch()

    def set_values(
        self,
        view: str,
        cls: str,
        oid: object,
        assignments: Dict[str, object],
        version: Optional[int] = None,
    ) -> None:
        self._check_writable(view, version)
        token = self._token(view, cls, version)
        if oid not in self.extent(token):
            raise OracleReject(f"{oid!r} is not a member of {cls!r}")
        translated = {
            self._check_assignable(view, cls, token, visible, version): value
            for visible, value in assignments.items()
        }
        undo = {
            name: self.values.get((oid, name), _MISSING) for name in translated
        }
        for name, value in translated.items():
            self.values[(oid, name)] = value
        # values never feed extents here (the oracle has no select tokens),
        # so bump the counter without dropping the extent/type memos
        self.mutations += 1
        if oid not in self.extent(token):  # pragma: no cover - no select tokens
            for name, old in undo.items():
                if old is _MISSING:
                    self.values.pop((oid, name), None)
                else:
                    self.values[(oid, name)] = old
            raise OracleReject("value-closure violation on set")

    def delete(self, oid: object) -> None:
        self.objects.pop(oid, None)
        for key in [k for k in self.values if k[0] == oid]:
            del self.values[key]
        self._touch()

    # ------------------------------------------------------------------
    # schema evolution (section 6, written out naively per view)
    # ------------------------------------------------------------------

    def _bump(self, state: ViewState, publish: bool = True) -> None:
        state.version += 1
        state.history[state.version] = state.snapshot()
        self._touch()
        if publish:
            self.publish()

    def _collapse_twins(self, state: ViewState, names) -> None:
        """Post-replacement dedup for merge-created views.

        When evolution replaces a view class's derivation with one the
        global classifier already knows, the real side's define returns the
        *existing* global class.  If that global is also selected by this
        view under another name (possible only after a section-7 merge of
        pinned versions), the real substitution collapses the selected set
        to a single entry whose display name is the replaced class's
        (``renames[primed] = visible_name`` in the manager).  Mirror: the
        replaced name adopts the twin's token (the dedup survivor keeps its
        identity, ancestry, and extent) and the twin's name vanishes.
        """
        if not state.merged:
            return
        for name in sorted(names):
            if name not in state.token:
                continue  # already consumed as an earlier name's twin
            self._ensure_registry()
            canon = self._canon_of(state.token[name])
            twin = None
            for other, other_token in state.token.items():
                if other != name and self._canon_of(other_token) is canon:
                    twin = other
                    break
            if twin is None:
                continue
            state.token[name] = state.token.pop(twin)
            state.anc[name] = {
                a for a in state.anc.pop(twin) if a != name
            }
            state.aliases.pop(twin, None)
            for cls, ancestors in state.anc.items():
                if twin in ancestors:
                    ancestors.discard(twin)
                    if cls != name:
                        ancestors.add(name)

    def _order_subs_first(self, state: ViewState, classes: Set[str]) -> List[str]:
        """Deeper classes first (every class before its ancestors)."""
        return sorted(classes, key=lambda c: (-len(state.anc[c]), c))

    def add_property(
        self, view: str, to: str, spec: Spec
    ) -> None:
        state = self._view(view)
        token = self._token(view, to)
        if spec.name in self.type_names(token):
            raise OracleReject(f"{spec.name!r} already exists in {to!r}")
        if spec.name in self.specs:
            raise OracleReject(f"property name {spec.name!r} already used globally")
        self.specs[spec.name] = spec
        primed_top = self._new_token(
            "derived", op="refine", sources=(token,), new=(spec.name,)
        )
        replacements = {to: primed_top}
        edges = state.direct_edges()
        frontier = [to]
        visited = {to}
        while frontier:
            current = frontier.pop(0)
            for sup, sub in sorted(edges):
                if sup != current or sub in visited:
                    continue
                visited.add(sub)
                if spec.name in self.type_names(state.token[sub]):
                    continue  # overriding definition stops propagation
                replacements[sub] = self._new_token(
                    "derived",
                    op="refine",
                    sources=(state.token[sub],),
                    shared=(spec.name,),
                )
                frontier.append(sub)
        state.token.update(replacements)
        self._collapse_twins(state, replacements)
        self._bump(state)

    def delete_property(self, view: str, from_: str, visible: str, kind: str) -> None:
        state = self._view(view)
        token = self._token(view, from_)
        underlying = self._underlying_of(view, from_, visible)
        if underlying not in self.type_names(token):
            raise OracleReject(f"no property {visible!r} in {from_!r}")
        if self.specs[underlying].kind != kind:
            raise OracleReject(f"{visible!r} is not a {kind}")
        for sup in state.anc[from_]:
            if underlying in self.type_names(state.token[sup]):
                raise OracleReject(
                    f"{visible!r} is not local to {from_!r} in this view"
                )
        edges = state.direct_edges()
        parents_of = {
            cls: {sup for sup, sub in edges if sub == cls} for cls in state.token
        }
        memo: Dict[str, bool] = {from_: False}

        def retains(cls: str) -> bool:
            if cls in memo:
                return memo[cls]
            memo[cls] = False  # acyclic guard
            if underlying not in self.type_names(state.token[cls]):
                result = False
            else:
                feeders = [
                    p
                    for p in parents_of[cls]
                    if underlying in self.type_names(state.token[p])
                ]
                # no view parent supplies the definition: it flows in from
                # outside the view and a view-scoped delete cannot cut it
                result = not feeders or any(retains(p) for p in feeders)
            memo[cls] = result
            return result

        replacements: Dict[str, Token] = {}
        for w in {from_} | state.descendants(from_):
            if underlying not in self.type_names(state.token[w]):
                continue
            if w != from_ and retains(w):
                continue
            replacements[w] = self._new_token(
                "derived",
                op="hide",
                sources=(state.token[w],),
                hidden=frozenset({underlying}),
            )
        state.token.update(replacements)
        self._collapse_twins(state, replacements)
        self._bump(state)

    def _subsumed(
        self,
        a: Token,
        b: Token,
        active: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> bool:
        """Provably ``extent(a) ⊆ extent(b)``, by the same definitional
        rules the real classifier's prover uses: base ancestry, hide/refine
        extent preservation, shrinking ops on the sub side, growing union on
        the sup side, and operator congruence.  The oracle needs this to
        predict when the classifier *deduplicates* a freshly derived class
        into an existing one, because that collapse decides which derivation
        (and hence which update routing) a view class ends up with."""
        if a is b:
            return True
        key = (id(a), id(b))
        if key in active:
            return False
        active = active | {key}
        if a.kind == "base" and b.kind == "base":
            return b in self._base_ancestors_or_self(a)
        if a.kind == "derived" and a.op in ("refine", "hide"):
            if self._subsumed(a.sources[0], b, active):
                return True
        if b.kind == "derived" and b.op in ("refine", "hide"):
            if self._subsumed(a, b.sources[0], active):
                return True
        if a.kind == "derived":
            if a.op == "difference" and self._subsumed(a.sources[0], b, active):
                return True
            if a.op == "union" and all(
                self._subsumed(s, b, active) for s in a.sources
            ):
                return True
            if a.op == "intersect" and any(
                self._subsumed(s, b, active) for s in a.sources
            ):
                return True
        if b.kind == "derived" and b.op == "union":
            if any(self._subsumed(a, s, active) for s in b.sources):
                return True
        if a.kind == "derived" and b.kind == "derived" and a.op == b.op:
            if a.op == "difference":
                if self._subsumed(
                    a.sources[0], b.sources[0], active
                ) and self._subsumed(b.sources[1], a.sources[1], active):
                    return True
            if a.op == "intersect":
                a0, a1 = a.sources
                b0, b1 = b.sources
                if (
                    self._subsumed(a0, b0, active)
                    and self._subsumed(a1, b1, active)
                ) or (
                    self._subsumed(a0, b1, active)
                    and self._subsumed(a1, b0, active)
                ):
                    return True
        return False

    def _dedups_into(self, extra: Token, current: Token) -> bool:
        """Would ``union(current, extra)`` collapse back into ``current``?

        Mirrors classifier duplicate detection: the union is discarded when
        its extent is provably equal to ``current``'s (which reduces to
        ``extra ⊆ current``) *and* its type — the intersection of both
        source types — equals ``current``'s type."""
        return self._subsumed(extra, current) and set(
            self.type_names(current)
        ) <= set(self.type_names(extra))

    def add_edge(self, view: str, sup: str, sub: str) -> None:
        state = self._view(view)
        t_sup = self._token(view, sup)
        t_sub = self._token(view, sub)
        if sup == sub or sup in state.anc[sub]:
            raise OracleReject(f"{sup!r} is already a superclass of {sub!r}")
        if sub in state.anc[sup]:
            raise OracleReject(f"edge {sup!r}->{sub!r} would create a cycle")
        sup_names = self.type_names(t_sup)
        replacements: Dict[str, Token] = {}
        for w in {sub} | state.descendants(sub):
            shared = tuple(sorted(sup_names - self.type_names(state.token[w])))
            if not shared:
                continue
            replacements[w] = self._new_token(
                "derived", op="refine", sources=(state.token[w],), shared=shared
            )
        primed_sub = replacements.get(sub, t_sub)
        for v in {sup} | state.anc[sup]:
            if v == sub or v in state.anc[sub]:
                continue  # already a superclass of sub through another path
            old = state.token[v]
            if self._dedups_into(primed_sub, old):
                continue  # classifier collapses the union back into v
            replacements[v] = self._new_token(
                "derived",
                op="union",
                sources=(old, primed_sub),
                propagation=old,
            )
        state.token.update(replacements)
        uppers = {sup} | state.anc[sup]
        for d in [sub] + sorted(state.descendants(sub)):
            state.anc[d] |= uppers - {d}
        self._collapse_twins(state, replacements)
        self._bump(state)

    def delete_edge(
        self, view: str, sup: str, sub: str, connected_to: Optional[str] = None
    ) -> None:
        state = self._view(view)
        self._token(view, sup)
        t_sub = self._token(view, sub)
        old_edges = state.direct_edges()
        if (sup, sub) not in old_edges:
            raise OracleReject(
                f"{sup!r} is not a direct superclass of {sub!r} in this view"
            )
        upper = None
        if connected_to is not None:
            upper = connected_to
            self._token(view, upper)
            if upper == sup or upper not in state.anc[sup]:
                raise OracleReject(
                    f"{connected_to!r} must be a superclass of {sup!r}"
                )
        remaining = old_edges - {(sup, sub)}
        if upper is not None:
            remaining = remaining | {(upper, sub)}

        def reachable_up(edges: Set[Tuple[str, str]], bottom: str) -> Set[str]:
            result: Set[str] = set()
            frontier = [bottom]
            while frontier:
                current = frontier.pop()
                for s, c in edges:
                    if c == current and s not in result:
                        result.add(s)
                        frontier.append(s)
            return result

        protected: Set[str] = set()
        if upper is not None:
            protected = {upper} | state.anc[upper]
        still_above_sub = reachable_up(remaining, sub)

        # first loop: shrink extents of sup and its view superclasses that
        # lose visibility of sub's instances (diff + keeper unions)
        new_tokens: Dict[str, Token] = {}
        for v in self._order_subs_first(state, {sup} | state.anc[sup]):
            if v in protected or v in still_above_sub:
                continue
            old = state.token[v]
            expr = self._new_token("derived", op="difference", sources=(old, t_sub))
            children = sorted(c for s, c in remaining if s == v)
            for child in children:
                keeper = new_tokens.get(child, state.token[child])
                if self._dedups_into(keeper, expr):
                    continue  # classifier collapses this union step
                expr = self._new_token(
                    "derived",
                    op="union",
                    sources=(expr, keeper),
                    propagation=old,
                )
            new_tokens[v] = expr

        # second loop: hide from sub's subtree every property inherited
        # solely through the deleted edge (findProperties, footnote 17)
        old_parents = {
            cls: {s for s, c in old_edges if c == cls} for cls in state.token
        }
        introduced = {}
        for cls in state.token:
            inherited: Set[str] = set()
            for p in old_parents[cls]:
                inherited |= self.type_names(state.token[p])
            introduced[cls] = set(self.type_names(state.token[cls])) - inherited
        remaining_parents = {
            cls: {s for s, c in remaining if c == cls} for cls in state.token
        }
        retained: Dict[str, Set[str]] = {}

        def retained_names(cls: str, active: FrozenSet[str]) -> Set[str]:
            if cls in retained:
                return retained[cls]
            if cls in active:  # pragma: no cover - view graphs are acyclic
                return set()
            result = set(introduced[cls])
            for p in remaining_parents[cls]:
                result |= retained_names(p, active | frozenset({cls}))
            retained[cls] = result
            return result

        sup_names = self.type_names(state.token[sup])
        for w in {sub} | state.descendants(sub):
            keep = retained_names(w, frozenset())
            lost = frozenset(
                n
                for n in sup_names
                if n in self.type_names(state.token[w]) and n not in keep
            )
            if lost:
                new_tokens[w] = self._new_token(
                    "derived", op="hide", sources=(state.token[w],), hidden=lost
                )

        state.token.update(new_tokens)
        # reachability is now the closure of the remaining direct edges
        anc: Dict[str, Set[str]] = {cls: set() for cls in state.token}

        def close(cls: str) -> Set[str]:
            result: Set[str] = set()
            frontier = list(remaining_parents[cls])
            while frontier:
                p = frontier.pop()
                if p in result:
                    continue
                result.add(p)
                frontier.extend(remaining_parents[p])
            return result

        for cls in state.token:
            anc[cls] = close(cls)
        state.anc = anc
        self._collapse_twins(state, new_tokens)
        self._bump(state)

    def _origins(self, token: Token) -> Set[Token]:
        if token.kind == "base":
            return {token}
        # a difference subtrahend is contravariant and reused verbatim by
        # the replay, so it contributes no origins
        sources = token.sources[:1] if token.op == "difference" else token.sources
        result: Set[Token] = set()
        for source in sources:
            result |= self._origins(source)
        return result

    def _replay(self, token: Token, mapping: Dict[Token, Token]) -> Token:
        if token in mapping:
            return mapping[token]
        if token.op == "difference":
            sources = (self._replay(token.sources[0], mapping), token.sources[1])
        else:
            sources = tuple(self._replay(s, mapping) for s in token.sources)
        replayed = self._new_token(
            "derived",
            op=token.op,
            sources=sources,
            new=token.new,
            shared=token.shared,
            hidden=token.hidden,
        )
        mapping[token] = replayed
        return replayed

    def add_class(
        self, view: str, name: str, connected_to: Optional[str] = None
    ) -> None:
        state = self._view(view)
        if name in state.token:
            raise OracleReject(f"view already has {name!r}")
        if name in self.global_names:
            raise OracleReject(f"global schema already has {name!r}")
        if connected_to is None:
            token = self._new_token("base", name=name)
            self.base[name] = token
            self.global_names.add(name)
            state.token[name] = token
            state.anc[name] = set()
            self._bump(state)
            return
        t_sup = self._token(view, connected_to)
        self.global_names.add(name)
        if t_sup.kind == "base":
            token = self._new_token("base", name=name, parents=(t_sup,))
            self.base[name] = token
        else:
            mapping: Dict[Token, Token] = {}
            for origin in sorted(self._origins(t_sup), key=lambda t: t.name):
                fresh = self._new_token("base", name=f"{name}_base_{origin.name}", parents=(origin,))
                mapping[origin] = fresh
            token = self._replay(t_sup, mapping)
            # the real define names this class with the user-given name
            token.lineage = name
        state.token[name] = token
        state.anc[name] = {connected_to} | set(state.anc[connected_to])
        self._bump(state)

    def delete_class(self, view: str, name: str) -> None:
        state = self._view(view)
        self._token(view, name)
        if len(state.token) == 1:
            raise OracleReject("view would become empty")
        del state.token[name]
        state.anc.pop(name)
        state.aliases.pop(name, None)
        for ancestors in state.anc.values():
            ancestors.discard(name)
        self._bump(state)

    def rename_class(self, view: str, old: str, new: str) -> None:
        state = self._view(view)
        self._token(view, old)
        if new in state.token:
            raise OracleReject(f"view already has a class named {new!r}")
        state.token[new] = state.token.pop(old)
        state.anc[new] = state.anc.pop(old)
        for ancestors in state.anc.values():
            if old in ancestors:
                ancestors.discard(old)
                ancestors.add(new)
        if old in state.aliases:
            state.aliases[new] = state.aliases.pop(old)
        self._bump(state, publish=False)

    def rename_property(self, view: str, cls: str, old: str, new: str) -> None:
        state = self._view(view)
        token = self._token(view, cls)
        visible = {self._alias_of(view, cls, n) for n in self.type_names(token)}
        if new in visible:
            raise OracleReject(f"{cls!r} already shows a property named {new!r}")
        underlying = self._underlying_of(view, cls, old)
        if underlying not in self.type_names(token):
            raise OracleReject(f"no property {old!r} in {cls!r}")
        per_class = state.aliases.setdefault(cls, {})
        per_class.pop(old, None)
        per_class[new] = underlying
        self._bump(state, publish=False)

    # -- composed operators (section 6.9) --------------------------------------

    def insert_class(self, view: str, name: str, between: Tuple[str, str]) -> None:
        sup, sub = between
        state = self._view(view)
        if sup not in state.token or sub not in state.token:
            raise OracleReject(
                f"both {sup!r} and {sub!r} must be in the view"
            )
        self.add_class(view, name, connected_to=sup)
        self.add_edge(view, name, sub)

    def delete_class_2(self, view: str, name: str) -> None:
        state = self._view(view)
        if name not in state.token:
            raise OracleReject(f"no class {name!r} in view")
        edges = state.direct_edges()
        subs = sorted(c for s, c in edges if s == name)
        sups = sorted(s for s, c in edges if c == name)
        for sub in subs:
            self.delete_edge(view, name, sub)
            for sup in sups:
                self.add_edge(view, sup, sub)
        for sup in sorted(
            s for s, c in self._view(view).direct_edges() if c == name
        ):
            self.delete_edge(view, sup, name)
        self.delete_class(view, name)

    # -- version merging (section 7) -------------------------------------------

    def merge_views(
        self,
        first: str,
        second: str,
        into: str,
        first_version: Optional[int] = None,
        second_version: Optional[int] = None,
    ) -> None:
        """Mirror of :func:`repro.core.merging.merge_views`.

        Classes of the two views that are the same *global* class (their
        tokens canonicalise to the same dedup survivor in the mirrored
        DAG) unify into one merged class; same-named distinct classes are
        disambiguated with the ``{name}_v{origin.version}`` suffix; the
        merged reachability is the global DAG's ancestry restricted to the
        merged selection.
        """
        if into in self.views:
            raise OracleReject(f"merge target view {into!r} already exists")
        fs = self._resolved(first, first_version)
        ss = self._resolved(second, second_version)
        self._ensure_registry()
        first_canon = {cls: self._canon_of(t) for cls, t in fs.token.items()}
        second_canon = {cls: self._canon_of(t) for cls, t in ss.token.items()}
        first_globals = set(first_canon.values())

        taken: Dict[str, Token] = {}
        chosen_name: Dict[Token, str] = {}

        def claim(canonical: Token, wanted: str, origin_version: int) -> None:
            holder = taken.get(wanted)
            if holder is None:
                taken[wanted] = canonical
                chosen_name[canonical] = wanted
                return
            if holder is canonical:  # pragma: no cover - defensive
                return
            suffixed = f"{wanted}_v{origin_version}"
            index = 2
            while suffixed in taken:
                suffixed = f"{wanted}_v{origin_version}_{index}"
                index += 1
            taken[suffixed] = canonical
            chosen_name[canonical] = suffixed

        # the real merge iterates ``sorted(selected)`` — *global* names, not
        # view-visible ones.  (lineage, id) reproduces that order without
        # tracking the names themselves (see Token.lineage).
        def global_order(canon_map):
            return lambda cls: (canon_map[cls].lineage, canon_map[cls].id)

        for cls in sorted(fs.token, key=global_order(first_canon)):
            claim(first_canon[cls], cls, fs.version)
        for cls in sorted(ss.token, key=global_order(second_canon)):
            if second_canon[cls] in first_globals:
                continue  # identical global class arrived through the first view
            claim(second_canon[cls], cls, ss.version)

        state = ViewState()
        for canonical, name in chosen_name.items():
            state.token[name] = canonical
        selection = set(chosen_name)
        for canonical, name in chosen_name.items():
            ancestors = self._dag_ancestors(canonical)
            state.anc[name] = {
                chosen_name[a] for a in ancestors if a in selection
            }
        for origin_state, canon_map in ((fs, first_canon), (ss, second_canon)):
            for cls, per_class in origin_state.aliases.items():
                if not per_class:
                    continue
                merged_name = chosen_name[canon_map[cls]]
                state.aliases.setdefault(merged_name, {}).update(per_class)
        state.merged = True
        state.history[1] = state.snapshot()
        self.views[into] = state
        self._touch()


_MISSING = object()
