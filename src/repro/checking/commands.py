"""Typed, JSON-serializable command vocabulary for differential fuzzing.

A :class:`Command` is one step of a fuzz run: a tag (``op``) plus a flat
dict of JSON-safe arguments.  Commands are *self-contained and blind*:
they never embed live object ids or schema names resolved at generation
time.  Every reference to a view / class / property / object is an
**index** that the runner resolves modulo the oracle's current sorted
observable lists at apply time.  That makes a command list:

* deterministic to replay (resolution only depends on the commands before
  it),
* robust under ddmin shrinking (removing an earlier command changes what
  an index resolves to, never crashes resolution — an unresolvable
  reference becomes an agreed rejection on both systems),
* trivially serializable to the JSON failure corpus.

Fresh names (classes ``K<n>``/``C<n>``, attributes ``a<n>``, methods
``m<n>``, views ``V<n>``, rename targets ``R<n>``/``r<n>``) come from
monotone per-generator counters, so a property name is never reused
across a run — the discipline :mod:`repro.checking.oracle` relies on.

The vocabulary covers the section 3 surface: all eight schema-change
primitives plus the two composed operators (``insert_class``,
``delete_class_2``) and the rename operators; the five generic updates;
savepoint transactions (commit and abort); atomic update batches
(``apply_many``); WAL checkpoints, clean
recovery, and crash injection at every :data:`CRASH_POINTS` seam; pinned
reader sessions (open / check / refresh / close); and lazy-migration
drains (``backfill_step``), which must be observably invisible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

CRASH_POINTS = (
    "wal:mid_append",
    "checkpoint:before_rename",
    "checkpoint:after_rename",
)

#: ops legal inside a savepoint transaction (generic updates only: a crash,
#: checkpoint or nested savepoint inside a savepoint is rejected by the real
#: system; schema changes inside an *aborted* savepoint would publish a
#: phantom epoch to concurrent readers, which the session layer forbids by
#: construction — the generator simply never asks for either)
UPDATE_OPS = ("create", "add", "remove", "set", "delete")

SCHEMA_OPS = (
    "add_attribute",
    "add_method",
    "delete_attribute",
    "delete_method",
    "add_edge",
    "delete_edge",
    "add_class",
    "delete_class",
    "rename_class",
    "rename_property",
    "insert_class",
    "delete_class_2",
)

READER_OPS = ("reader_open", "reader_check", "reader_refresh", "reader_close")

AUTHORING_OPS = ("define_class", "create_view")

DURABILITY_OPS = ("checkpoint", "crash", "recover_clean")

#: lazy-migration drains.  ``backfill_step`` captures a bounded batch of
#: pending epoch extents on the real side only — migration is transparent,
#: so the oracle applies nothing and the equivalence sweep must still pass
#: (that *is* the property being fuzzed)
MIGRATION_OPS = ("backfill_step",)

#: the fleet-simulator vocabulary (section 7 / rolling deploys): app slots
#: pin a view *version* and read/write through that pin while the global
#: schema advances underneath; ``roll_app`` rebinds a slot to the successor
#: version, ``retire_version`` decommissions a vacated version, and
#: ``merge_views`` folds two view versions into a brand-new view.  Writes
#: through an old pin must propagate to every newer (and merged) view —
#: that propagation is exactly what the post-step sweep checks.
VERSION_OPS = (
    "pin_view_version",
    "read_via_version",
    "write_via_version",
    "roll_app",
    "retire_version",
    "merge_views",
)

ALL_OPS = (
    UPDATE_OPS
    + SCHEMA_OPS
    + READER_OPS
    + AUTHORING_OPS
    + DURABILITY_OPS
    + MIGRATION_OPS
    + VERSION_OPS
    + (
        "txn",
        "apply_many",
    )
)

READER_SLOTS = 3

#: simulated app-version slots (the fleet): each holds one (view, version) pin
APP_SLOTS = 4

#: inner ops a ``write_via_version`` can carry (generic updates through the
#: app's pinned handle)
PINNED_WRITE_OPS = ("create", "add", "remove", "set", "delete")


@dataclass(frozen=True)
class Command:
    """One fuzz step: an operation tag plus JSON-safe arguments."""

    op: str
    args: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.args.items()))
        return f"{self.op}({inner})"


def command_to_dict(command: Command) -> dict:
    return {"op": command.op, "args": dict(command.args)}


def command_from_dict(data: dict) -> Command:
    op = data["op"]
    if op not in ALL_OPS:
        raise ValueError(f"unknown command op {op!r}")
    return Command(op=op, args=dict(data.get("args", {})))


_DEFAULT_WEIGHTS = {
    "update": 42,
    "schema": 30,
    "reader": 9,
    "txn": 5,
    "batch": 6,
    "durability": 8,
    "authoring": 6,
    "migration": 4,
    "version": 10,
}


class CommandGenerator:
    """Seeded source of random commands (plus the deterministic setup prefix).

    One generator instance accompanies one run: its monotone counters
    guarantee globally-fresh names across every command it emits, whether
    the op is chosen by the internal RNG (:meth:`next_command`) or forced
    by a Hypothesis rule (:meth:`gen_op`).
    """

    def __init__(self, seed: int, config: Optional[dict] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.config = dict(config or {})
        self.weights = dict(_DEFAULT_WEIGHTS)
        self.weights.update(self.config.get("weights", {}))
        self._counter = 0

    # -- fresh names ----------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- the deterministic setup prefix ---------------------------------------

    def setup_commands(self) -> List[Command]:
        """An initial schema/view/WAL/object population, *as commands*.

        Setup is part of the command list so corpus replays start from an
        empty database and the minimizer may shrink setup steps a failure
        does not actually need.
        """
        k0, k1, k2, k3, k4 = (self._fresh("K") for _ in range(5))
        a = [self._fresh("a") for _ in range(6)]
        steps = [
            Command(
                "define_class",
                {
                    "name": k0,
                    "attrs": [
                        {"name": a[0], "required": True, "default": 0},
                        {"name": a[1], "required": False, "default": None},
                    ],
                    "parent_picks": [],
                },
            ),
            Command(
                "define_class",
                {
                    "name": k1,
                    "attrs": [{"name": a[2], "required": False, "default": None}],
                    "parent_picks": [0],
                },
            ),
            Command(
                "define_class",
                {
                    "name": k2,
                    "attrs": [{"name": a[3], "required": True, "default": 1}],
                    "parent_picks": [0],
                },
            ),
            Command(
                "define_class",
                {
                    "name": k3,
                    "attrs": [{"name": a[4], "required": False, "default": None}],
                    "parent_picks": [1, 2],
                },
            ),
            Command(
                "define_class",
                {
                    "name": k4,
                    "attrs": [{"name": a[5], "required": False, "default": 7}],
                    "parent_picks": [],
                },
            ),
            Command(
                "create_view",
                {"name": self._fresh("V"), "picks": [0, 1, 2, 3, 4]},
            ),
            Command("create_view", {"name": self._fresh("V"), "picks": [0, 1, 4]}),
            Command("enable_wal", {}),
        ]
        for i in range(4):
            steps.append(
                Command(
                    "create",
                    {
                        "view_i": 0,
                        "cls_i": i,
                        "assigns": [[j, self.rng.randint(0, 9)] for j in range(2)],
                    },
                )
            )
        steps.append(Command("reader_open", {"slot": 0}))
        return steps

    # -- random command production --------------------------------------------

    def _i(self, rng: random.Random) -> int:
        return rng.randrange(0, 64)

    def next_command(self) -> Command:
        families = list(self.weights)
        weights = [self.weights[f] for f in families]
        family = self.rng.choices(families, weights=weights, k=1)[0]
        if family == "update":
            op = self.rng.choice(UPDATE_OPS)
        elif family == "schema":
            op = self.rng.choice(SCHEMA_OPS)
        elif family == "reader":
            op = self.rng.choice(READER_OPS)
        elif family == "txn":
            op = "txn"
        elif family == "batch":
            op = "apply_many"
        elif family == "durability":
            op = self.rng.choice(DURABILITY_OPS)
        elif family == "migration":
            op = self.rng.choice(MIGRATION_OPS)
        elif family == "version":
            op = self.rng.choice(VERSION_OPS)
        else:
            op = self.rng.choice(AUTHORING_OPS)
        return self.gen_op(op, self.rng)

    def generate(self, n: int) -> List[Command]:
        """Setup prefix plus ``n`` random commands."""
        commands = self.setup_commands()
        commands.extend(self.next_command() for _ in range(n))
        return commands

    def gen_op(self, op: str, rng: Optional[random.Random] = None) -> Command:
        """A random instance of a *specific* operation (Hypothesis rules
        force the op and supply their own deterministic RNG)."""
        rng = rng or self.rng
        maker = getattr(self, f"_gen_{op}")
        return maker(rng)

    # -- per-op makers (args are blind indices; see module docstring) ---------

    def _gen_define_class(self, rng) -> Command:
        attrs = []
        for _ in range(rng.randint(1, 2)):
            required = rng.random() < 0.3
            default = rng.randint(0, 9) if rng.random() < 0.7 else None
            attrs.append(
                {"name": self._fresh("a"), "required": required, "default": default}
            )
        parent_picks = [self._i(rng) for _ in range(rng.randint(0, 2))]
        return Command(
            "define_class",
            {"name": self._fresh("K"), "attrs": attrs, "parent_picks": parent_picks},
        )

    def _gen_create_view(self, rng) -> Command:
        picks = [self._i(rng) for _ in range(rng.randint(1, 4))]
        return Command("create_view", {"name": self._fresh("V"), "picks": picks})

    def _gen_create(self, rng) -> Command:
        assigns = [
            [self._i(rng), rng.randint(0, 9)] for _ in range(rng.randint(0, 3))
        ]
        return Command(
            "create",
            {"view_i": self._i(rng), "cls_i": self._i(rng), "assigns": assigns},
        )

    def _gen_add(self, rng) -> Command:
        return Command(
            "add",
            {
                "view_i": self._i(rng),
                "src_cls_i": self._i(rng),
                "obj_i": self._i(rng),
                "cls_i": self._i(rng),
            },
        )

    def _gen_remove(self, rng) -> Command:
        return Command(
            "remove",
            {"view_i": self._i(rng), "cls_i": self._i(rng), "obj_i": self._i(rng)},
        )

    def _gen_set(self, rng) -> Command:
        return Command(
            "set",
            {
                "view_i": self._i(rng),
                "cls_i": self._i(rng),
                "obj_i": self._i(rng),
                "attr_i": self._i(rng),
                "value": rng.randint(0, 9),
            },
        )

    def _gen_delete(self, rng) -> Command:
        return Command(
            "delete",
            {"view_i": self._i(rng), "cls_i": self._i(rng), "obj_i": self._i(rng)},
        )

    def _gen_add_attribute(self, rng) -> Command:
        return Command(
            "add_attribute",
            {
                "view_i": self._i(rng),
                "to_i": self._i(rng),
                "name": self._fresh("a"),
                "default": rng.randint(0, 9) if rng.random() < 0.5 else None,
            },
        )

    def _gen_add_method(self, rng) -> Command:
        return Command(
            "add_method",
            {"view_i": self._i(rng), "to_i": self._i(rng), "name": self._fresh("m")},
        )

    def _gen_delete_attribute(self, rng) -> Command:
        return Command(
            "delete_attribute",
            {"view_i": self._i(rng), "cls_i": self._i(rng), "attr_i": self._i(rng)},
        )

    def _gen_delete_method(self, rng) -> Command:
        return Command(
            "delete_method",
            {"view_i": self._i(rng), "cls_i": self._i(rng), "meth_i": self._i(rng)},
        )

    def _gen_add_edge(self, rng) -> Command:
        return Command(
            "add_edge",
            {"view_i": self._i(rng), "sup_i": self._i(rng), "sub_i": self._i(rng)},
        )

    def _gen_delete_edge(self, rng) -> Command:
        return Command(
            "delete_edge",
            {
                "view_i": self._i(rng),
                "sup_i": self._i(rng),
                "sub_i": self._i(rng),
                "connect": rng.random() < 0.5,
                "conn_i": self._i(rng),
            },
        )

    def _gen_add_class(self, rng) -> Command:
        return Command(
            "add_class",
            {
                "view_i": self._i(rng),
                "name": self._fresh("C"),
                "connect": rng.random() < 0.7,
                "conn_i": self._i(rng),
            },
        )

    def _gen_delete_class(self, rng) -> Command:
        return Command(
            "delete_class", {"view_i": self._i(rng), "cls_i": self._i(rng)}
        )

    def _gen_rename_class(self, rng) -> Command:
        return Command(
            "rename_class",
            {"view_i": self._i(rng), "cls_i": self._i(rng), "new": self._fresh("R")},
        )

    def _gen_rename_property(self, rng) -> Command:
        return Command(
            "rename_property",
            {
                "view_i": self._i(rng),
                "cls_i": self._i(rng),
                "prop_i": self._i(rng),
                "new": self._fresh("r"),
            },
        )

    def _gen_insert_class(self, rng) -> Command:
        return Command(
            "insert_class",
            {
                "view_i": self._i(rng),
                "name": self._fresh("C"),
                "sup_i": self._i(rng),
                "sub_i": self._i(rng),
            },
        )

    def _gen_delete_class_2(self, rng) -> Command:
        return Command(
            "delete_class_2", {"view_i": self._i(rng), "cls_i": self._i(rng)}
        )

    def _gen_txn(self, rng) -> Command:
        inner = []
        for _ in range(rng.randint(1, 4)):
            op = rng.choice(UPDATE_OPS)
            inner.append(command_to_dict(self.gen_op(op, rng)))
        return Command("txn", {"abort": rng.random() < 0.4, "inner": inner})

    def _gen_apply_many(self, rng) -> Command:
        """A ``TseDatabase.apply_many`` batch of 2-5 generic updates.

        Unlike ``txn`` there is no abort flag: the batch's atomicity comes
        from the real system itself — any rejected update must roll back
        the whole batch, which the runner checks against the oracle.
        """
        inner = []
        for _ in range(rng.randint(2, 5)):
            op = rng.choice(UPDATE_OPS)
            inner.append(command_to_dict(self.gen_op(op, rng)))
        return Command("apply_many", {"inner": inner})

    def _gen_checkpoint(self, rng) -> Command:
        return Command("checkpoint", {})

    def _gen_crash(self, rng) -> Command:
        point = rng.choice(CRASH_POINTS)
        args: Dict[str, object] = {"point": point}
        if point == "wal:mid_append":
            op = rng.choice(UPDATE_OPS + SCHEMA_OPS)
            args["inner"] = command_to_dict(self.gen_op(op, rng))
        return Command("crash", args)

    def _gen_recover_clean(self, rng) -> Command:
        return Command("recover_clean", {})

    def _gen_enable_wal(self, rng) -> Command:
        return Command("enable_wal", {})

    def _gen_backfill_step(self, rng) -> Command:
        return Command("backfill_step", {"limit": rng.randint(1, 4)})

    # -- fleet / version lifecycle (blind indices, like everything else) ------

    def _gen_pin_view_version(self, rng) -> Command:
        return Command(
            "pin_view_version",
            {
                "app": rng.randrange(APP_SLOTS),
                "view_i": self._i(rng),
                "version_sel": self._i(rng),
            },
        )

    def _gen_read_via_version(self, rng) -> Command:
        return Command("read_via_version", {"app": rng.randrange(APP_SLOTS)})

    def _gen_write_via_version(self, rng) -> Command:
        inner = self.gen_op(rng.choice(PINNED_WRITE_OPS), rng)
        return Command(
            "write_via_version",
            {"app": rng.randrange(APP_SLOTS), "inner": command_to_dict(inner)},
        )

    def _gen_roll_app(self, rng) -> Command:
        return Command("roll_app", {"app": rng.randrange(APP_SLOTS)})

    def _gen_retire_version(self, rng) -> Command:
        return Command(
            "retire_version",
            {"view_i": self._i(rng), "version_sel": self._i(rng)},
        )

    def _gen_merge_views(self, rng) -> Command:
        return Command(
            "merge_views",
            {
                "name": self._fresh("V"),
                "first_i": self._i(rng),
                "second_i": self._i(rng),
                "pin_first": rng.random() < 0.35,
                "first_sel": self._i(rng),
                "pin_second": rng.random() < 0.35,
                "second_sel": self._i(rng),
            },
        )

    def _gen_reader_open(self, rng) -> Command:
        return Command("reader_open", {"slot": rng.randrange(READER_SLOTS)})

    def _gen_reader_check(self, rng) -> Command:
        return Command("reader_check", {"slot": rng.randrange(READER_SLOTS)})

    def _gen_reader_refresh(self, rng) -> Command:
        return Command("reader_refresh", {"slot": rng.randrange(READER_SLOTS)})

    def _gen_reader_close(self, rng) -> Command:
        return Command("reader_close", {"slot": rng.randrange(READER_SLOTS)})


# enable_wal appears in setup prefixes and corpus files but is not drawn
# randomly (a second enable is an agreed rejection, pure noise)
ALL_OPS = ALL_OPS + ("enable_wal",)
