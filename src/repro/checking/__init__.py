"""Differential checking: an executable reference semantics for TSE.

This package is correctness *tooling*, not part of the production pipeline:

* :mod:`repro.checking.oracle` — a deliberately naive reference model of
  the paper's observable semantics (flat dicts, extents recomputed from
  scratch, no incremental maintenance, no WAL, no slicing);
* :mod:`repro.checking.commands` — a typed, JSON-serializable command
  vocabulary covering the section 3 schema changes, the five generic
  updates, savepoints, crash/recovery and reader sessions;
* :mod:`repro.checking.runner` — the differential harness: applies each
  command to the real system *and* the oracle and asserts observable
  equivalence after every step;
* :mod:`repro.checking.minimize` — ddmin-style shrinking of diverging
  command lists plus the failure-corpus JSON format.
"""

from repro.checking.commands import (
    Command,
    CommandGenerator,
    command_from_dict,
    command_to_dict,
)
from repro.checking.minimize import (
    load_corpus_entry,
    minimize_commands,
    save_corpus_entry,
)
from repro.checking.oracle import OracleReject, RefModel
from repro.checking.runner import (
    Divergence,
    DifferentialHarness,
    run_commands,
    run_sequence,
)

__all__ = [
    "Command",
    "CommandGenerator",
    "DifferentialHarness",
    "Divergence",
    "OracleReject",
    "RefModel",
    "command_from_dict",
    "command_to_dict",
    "load_corpus_entry",
    "minimize_commands",
    "run_commands",
    "run_sequence",
    "save_corpus_entry",
]
