"""ddmin shrinking of diverging command lists + the failure-corpus format.

When the differential runner finds a divergence, the raw sequence is
usually dozens of commands of which only a handful matter.
:func:`minimize_commands` is a classic delta-debugging loop: remove
chunks (halving granularity until single commands) and keep any removal
that still reproduces a divergence with the *same signature*
``(kind, op)``, iterating to a fixpoint.  Removal is safe by
construction — commands address schema elements through blind indices,
so a shrunk prefix can change what a later command refers to but never
how it parses; a reference that no longer resolves becomes an agreed
skip on both systems.

Shrunk failures are serialized as corpus JSON (one file per divergence)
under a corpus directory; ``tests/test_differential.py`` replays every
committed corpus entry as an ordinary tier-1 regression test.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.checking.commands import Command, command_from_dict, command_to_dict
from repro.checking.runner import Divergence, run_commands

#: cap on reproduction runs during one shrink (each run replays the whole
#: candidate list against a fresh database pair)
DEFAULT_BUDGET = 400


def minimize_commands(
    commands: List[Command],
    fails: Optional[Callable[[List[Command]], bool]] = None,
    budget: int = DEFAULT_BUDGET,
) -> Tuple[List[Command], Optional[Divergence]]:
    """Shrink ``commands`` to a (locally) minimal list that still fails.

    ``fails`` decides whether a candidate still reproduces; by default the
    candidate must diverge with the same ``(kind, op)`` signature as the
    full list.  Returns ``(minimal_commands, final_divergence)`` — the
    divergence is re-captured from the minimal list so its step/detail
    match what a replay will see (``None`` only when ``fails`` is custom
    and the final probe was not a divergence run).
    """
    runs = [0]

    if fails is None:
        initial = run_commands(commands)
        if initial is None:
            raise ValueError("minimize_commands needs a failing command list")
        signature = initial.signature()

        def fails(candidate: List[Command]) -> bool:
            divergence = run_commands(candidate)
            return divergence is not None and divergence.signature() == signature

    def probe(candidate: List[Command]) -> bool:
        if runs[0] >= budget:
            return False
        runs[0] += 1
        return fails(candidate)

    current = list(commands)
    # phase 1: chunked ddmin with doubling granularity
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and probe(candidate):
                current = candidate
            else:
                index += chunk
        if chunk == 1:
            break
        chunk //= 2
    # phase 2: element-wise passes to a fixpoint (chunk removals can
    # expose single commands that are now redundant)
    changed = True
    while changed and runs[0] < budget:
        changed = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1:]
            if candidate and probe(candidate):
                current = candidate
                changed = True
            else:
                index += 1
    return current, run_commands(current)


# ---------------------------------------------------------------------------
# corpus serialization
# ---------------------------------------------------------------------------

CORPUS_FORMAT = 1


def save_corpus_entry(
    directory,
    name: str,
    commands: List[Command],
    divergence: Optional[Divergence] = None,
    seed: Optional[int] = None,
    note: str = "",
) -> Path:
    """Write one corpus entry as JSON; returns the file path.

    Entries with a recorded ``divergence`` document a historical failure
    (the replay test asserts the bug stays *fixed*, i.e. replaying now
    yields no divergence); entries without one are pinned known-good
    sequences.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    payload = {
        "format": CORPUS_FORMAT,
        "name": name,
        "seed": seed,
        "note": note,
        "commands": [command_to_dict(c) for c in commands],
        "divergence": divergence.to_dict() if divergence is not None else None,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_corpus_entry(path) -> Tuple[List[Command], dict]:
    """Read one corpus entry; returns ``(commands, metadata)``."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != CORPUS_FORMAT:
        raise ValueError(f"unsupported corpus format in {path}")
    commands = [command_from_dict(d) for d in data["commands"]]
    meta = {k: v for k, v in data.items() if k != "commands"}
    return commands, meta
