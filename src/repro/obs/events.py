"""A process-local event bus for schema-change lifecycle events.

PR 1 introduced one hard-wired listener channel: the instance pool's
``add_delta_listener`` feeding typed :class:`~repro.objectmodel.slicing.PoolDelta`
events to the incremental extent engine.  This module generalises the
pattern to the *schema-change* path, so tools, tests and benchmarks can
subscribe to pipeline milestones without patching internals:

``schema_change_requested``
    a primitive operator was invoked against a view (before translation);
``translated``
    the TSE Translator produced a ``defineVC`` script (section 6);
``classified``
    the algebra processor ran the script and the classifier integrated or
    deduplicated every statement (section 3.1);
``view_substituted``
    the successor view version replaced the old one (section 5);
``schema_change_applied`` / ``schema_change_failed``
    terminal outcome of the pipeline;
``schema_restore_failed``
    the rollback after a failed change itself raised (the schema may be
    torn — strictly worse than a failed change, so it gets its own kind);
``definevc``
    a user-level ``defineVC`` outside any evolution plan.

The pool's delta channel stays where it is — it fires per object mutation
on the hottest path in the system and must remain a bare callback list —
but the two layers compose: subscribe to both and you see every state
transition in the database.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping

__all__ = ["Event", "EventBus", "LIFECYCLE_EVENTS"]

#: the schema-change lifecycle vocabulary (subscribable individually or
#: via the "*" wildcard)
LIFECYCLE_EVENTS = (
    "schema_change_requested",
    "translated",
    "classified",
    "view_substituted",
    "schema_change_applied",
    "schema_change_failed",
    "schema_restore_failed",
    "definevc",
)

#: wildcard subscription key
ANY = "*"


@dataclass(frozen=True)
class Event:
    """One emitted event: a kind plus a read-only payload."""

    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.payload[key]

    def get(self, key: str, default: object = None) -> object:
        return self.payload.get(key, default)


class EventBus:
    """Synchronous publish/subscribe over string-keyed event kinds.

    Emission with no subscribers costs one dict lookup; subscriber
    exceptions propagate to the emitter (subscribers are part of the same
    unit of work — a failing benchmark probe *should* fail the run).
    """

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Callable[[Event], None]]] = {}
        self.emitted = 0
        #: guards subscriber-list mutation and the emitted counter; callbacks
        #: are invoked *outside* the lock (on a copied tuple) so a handler
        #: that subscribes/unsubscribes — or emits — never deadlocks
        self._lock = threading.Lock()

    def subscribe(
        self, kind: str, callback: Callable[[Event], None]
    ) -> Callable[[], None]:
        """Register ``callback`` for ``kind`` (or ``"*"`` for everything).

        Returns an unsubscribe thunk, so probes can be scoped::

            undo = bus.subscribe("classified", record)
            try: ...
            finally: undo()
        """
        with self._lock:
            self._subscribers.setdefault(kind, []).append(callback)

        def unsubscribe() -> None:
            self.unsubscribe(kind, callback)

        return unsubscribe

    def unsubscribe(self, kind: str, callback: Callable[[Event], None]) -> None:
        with self._lock:
            handlers = self._subscribers.get(kind)
            if handlers and callback in handlers:
                handlers.remove(callback)

    def emit(self, kind: str, **payload: object) -> Event:
        """Publish one event; returns it (handy for tests)."""
        event = Event(kind, payload)
        with self._lock:
            self.emitted += 1
            direct = tuple(self._subscribers.get(kind, ()))
            wildcard = tuple(self._subscribers.get(ANY, ()))
        for callback in direct:
            callback(event)
        for callback in wildcard:
            callback(event)
        return event

    def subscriber_count(self, kind: str) -> int:
        with self._lock:
            return len(self._subscribers.get(kind, ()))
