"""``repro.obs`` — observability for the transparent schema-change pipeline.

Three cooperating pieces, one bundle per database:

* :class:`~repro.obs.tracing.Tracer` — span-based tracing of the pipeline
  (translate → classify → view-generate → extent-maintain → commit), with a
  strict no-op path when disabled;
* :class:`~repro.obs.metrics.MetricsRegistry` — the unified registry that
  ``Database.stats()`` delegates to, exportable as JSON and Prometheus text;
* :class:`~repro.obs.events.EventBus` — subscribable schema-change
  lifecycle events, generalising the pool-delta listener pattern;
* :class:`~repro.obs.flight.FlightRecorder` — the black box: a bounded
  JSONL event log with slow-op records and crash dossiers;
* :mod:`~repro.obs.traceexport` — the span ring as Chrome trace-event
  JSON, loadable in Perfetto.

:class:`Observability` wires them together (spans feed the span-duration
histogram; every event lands in the flight recorder; slow root spans file
slow-op records).
"""

from __future__ import annotations

from repro.obs.events import LIFECYCLE_EVENTS, Event, EventBus
from repro.obs.flight import DOSSIER_TRIGGERS, FlightRecorder
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    LABEL_CARDINALITY_BUDGET,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer, phase_breakdown
from repro.obs.traceexport import (
    export_chrome_trace,
    reconstruct_tree,
    to_trace_events,
)

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "phase_breakdown",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "LABEL_CARDINALITY_BUDGET",
    "OVERFLOW_LABEL",
    "EventBus",
    "Event",
    "LIFECYCLE_EVENTS",
    "FlightRecorder",
    "DOSSIER_TRIGGERS",
    "export_chrome_trace",
    "to_trace_events",
    "reconstruct_tree",
]


class Observability:
    """Per-database bundle: tracer, metrics registry, event bus, flight
    recorder — one of each, wired together."""

    def __init__(self, ring_size: int = 64) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(metrics=self.metrics, ring_size=ring_size)
        self.events = EventBus()
        self.flight = FlightRecorder().attach(self)
