"""``repro.obs`` — observability for the transparent schema-change pipeline.

Three cooperating pieces, one bundle per database:

* :class:`~repro.obs.tracing.Tracer` — span-based tracing of the pipeline
  (translate → classify → view-generate → extent-maintain → commit), with a
  strict no-op path when disabled;
* :class:`~repro.obs.metrics.MetricsRegistry` — the unified registry that
  ``Database.stats()`` delegates to, exportable as JSON and Prometheus text;
* :class:`~repro.obs.events.EventBus` — subscribable schema-change
  lifecycle events, generalising the pool-delta listener pattern.

:class:`Observability` wires the three together (spans feed the span-
duration histogram; event emission counts surface as a counter).
"""

from __future__ import annotations

from repro.obs.events import LIFECYCLE_EVENTS, Event, EventBus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer, phase_breakdown

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "phase_breakdown",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "EventBus",
    "Event",
    "LIFECYCLE_EVENTS",
]


class Observability:
    """Per-database bundle: one tracer, one metrics registry, one event bus."""

    def __init__(self, ring_size: int = 64) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(metrics=self.metrics, ring_size=ring_size)
        self.events = EventBus()
