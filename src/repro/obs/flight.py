"""Flight recorder: a bounded black-box event log with crash dossiers.

The schema-change pipeline is transparent by design — which is exactly why
its failures are opaque: by the time a ``schema_change_failed`` surfaces,
the memento rollback has already erased the evidence.  The flight recorder
keeps the evidence.  It is a bounded, structured, always-on log of what the
system just did, cheap enough to leave running:

* **event stream** — every :class:`~repro.obs.events.EventBus` emission
  (lifecycle events, pool deltas) is appended to an in-memory ring of the
  last N records; optionally mirrored to a JSONL file with size-based
  rotation and opt-in fsync, so a post-mortem can read past the ring.
* **slow-op records** — every finished root span over a configurable
  threshold is recorded with its per-phase breakdown, via the tracer's
  ``on_root`` hook (no cost when tracing is disabled: no spans exist).
* **crash dossiers** — on ``schema_change_failed``, WAL recovery, or a
  differential-oracle divergence, :meth:`FlightRecorder.dump_dossier`
  writes one timestamped JSON file bundling the recent events, every span
  still open on any thread, the full metrics snapshot, and registered
  live state (schema generation, published epoch).  The differential
  harness adds the command sequence, making the dossier *replayable*.

File dumps only happen once a dossier directory is configured
(:attr:`FlightRecorder.dossier_dir`) — the library never writes to disk
behind the embedder's back; :meth:`build_dossier` always works in memory.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = ["FlightRecorder", "DOSSIER_TRIGGERS"]

#: event kinds that trigger an automatic dossier dump (when a dossier
#: directory is configured)
DOSSIER_TRIGGERS = ("schema_change_failed", "recovery", "divergence")


def _json_safe(value: object) -> object:
    """Payload values survive json.dumps; rich objects degrade to repr."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class FlightRecorder:
    """Bounded structured event log + dossier dumper for one database."""

    def __init__(
        self,
        max_events: int = 256,
        slow_op_threshold_s: float = 0.050,
        dossier_events: int = 64,
    ) -> None:
        self._events: deque = deque(maxlen=max_events)
        self._seq = 0
        self._lock = threading.Lock()
        self.slow_op_threshold_s = slow_op_threshold_s
        self.dossier_events = dossier_events
        #: where automatic dossiers land; None disables file dumps
        self.dossier_dir: Optional[Path] = None
        self.records_recorded = 0
        self.slow_ops_recorded = 0
        self.dossiers_written = 0
        #: named callables contributing live state to every dossier
        self._state: Dict[str, Callable[[], object]] = {}
        self._obs = None  # the Observability bundle, once attached
        # optional JSONL mirror
        self._file = None
        self._file_path: Optional[Path] = None
        self._file_bytes = 0
        self._max_bytes = 1 << 20
        self._rotations = 2
        self._fsync = False

    # -- wiring ------------------------------------------------------------

    def attach(self, obs) -> "FlightRecorder":
        """Wire into an ``Observability`` bundle: subscribe to every event,
        watch finished root spans for slow ops."""
        self._obs = obs
        obs.events.subscribe("*", self._on_event)
        obs.tracer.on_root = self._on_root_span
        return self

    def add_state(self, name: str, provider: Callable[[], object]) -> None:
        """Register a live-state contributor (e.g. schema generation) that
        is evaluated at dossier time."""
        self._state[name] = provider

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, **payload: object) -> Dict[str, object]:
        entry = {
            "seq": 0,
            "t": time.time(),
            "kind": kind,
            **{k: _json_safe(v) for k, v in payload.items()},
        }
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._events.append(entry)
            self.records_recorded += 1
            if self._file is not None:
                self._write_line(entry)
        if kind in DOSSIER_TRIGGERS and self.dossier_dir is not None:
            self.dump_dossier(reason=kind)
        return entry

    def _on_event(self, event) -> None:
        self.record(event.kind, **event.payload)

    def _on_root_span(self, span) -> None:
        if span.duration_s < self.slow_op_threshold_s:
            return
        self.slow_ops_recorded += 1
        phases = {}
        for child in span.walk():
            entry = phases.setdefault(child.name, {"count": 0, "total_ms": 0.0})
            entry["count"] += 1
            entry["total_ms"] = round(entry["total_ms"] + child.duration_ms, 4)
        self.record(
            "slow_op",
            span=span.name,
            duration_ms=round(span.duration_ms, 4),
            attributes=span.attributes,
            phases=phases,
        )

    # -- JSONL mirror ------------------------------------------------------

    def enable_file(
        self,
        path,
        max_bytes: int = 1 << 20,
        rotations: int = 2,
        fsync: bool = False,
    ) -> None:
        """Mirror every record to ``path`` as JSON lines, rotating at
        ``max_bytes`` into ``path.1`` … ``path.<rotations>``."""
        with self._lock:
            self._close_file_locked()
            self._file_path = Path(path)
            self._file_path.parent.mkdir(parents=True, exist_ok=True)
            self._max_bytes = max_bytes
            self._rotations = rotations
            self._fsync = fsync
            self._file = open(self._file_path, "a", encoding="utf-8")
            self._file_bytes = self._file.tell()

    def disable_file(self) -> None:
        with self._lock:
            self._close_file_locked()

    def _close_file_locked(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._file_path = None
            self._file_bytes = 0

    def _write_line(self, entry: Dict[str, object]) -> None:
        line = json.dumps(entry, default=repr) + "\n"
        self._file.write(line)
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._file_bytes += len(line.encode("utf-8"))
        if self._file_bytes >= self._max_bytes:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        path = self._file_path
        self._file.close()
        for index in range(self._rotations, 0, -1):
            src = path if index == 1 else Path(f"{path}.{index - 1}")
            dst = Path(f"{path}.{index}")
            if src.exists():
                os.replace(src, dst)
        self._file = open(path, "a", encoding="utf-8")
        self._file_bytes = 0

    # -- reading back ------------------------------------------------------

    def tail(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most recent records, oldest first; ``limit`` keeps the newest N."""
        with self._lock:
            events = list(self._events)
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return events

    # -- dossiers ----------------------------------------------------------

    def build_dossier(
        self, reason: str, extra: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """The forensic bundle as a dict: recent events, open spans, recent
        traces, metrics snapshot, live state, and caller-supplied extras."""
        dossier: Dict[str, object] = {
            "reason": reason,
            "created_unix": time.time(),
            "events": self.tail(self.dossier_events),
            "state": {name: _json_safe(fn()) for name, fn in self._state.items()},
        }
        if self._obs is not None:
            dossier["open_spans"] = [
                {"name": s.name, "attributes": _json_safe(s.attributes)}
                for s in self._obs.tracer.open_spans()
            ]
            dossier["recent_traces"] = [
                root.as_dict() for root in self._obs.tracer.traces(limit=8)
            ]
            dossier["metrics"] = _json_safe(self._obs.metrics.snapshot())
        if extra:
            dossier["extra"] = _json_safe(extra)
        return dossier

    def dump_dossier(
        self,
        reason: str,
        extra: Optional[Dict[str, object]] = None,
        directory=None,
    ) -> Optional[Path]:
        """Write the dossier to ``<dir>/dossier-<reason>-<stamp>.json``.

        Uses ``directory`` if given, else the configured
        :attr:`dossier_dir`; returns None (and writes nothing) when
        neither is set."""
        target = Path(directory) if directory is not None else self.dossier_dir
        if target is None:
            return None
        target.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S") + f"-{time.time_ns() % 10**9:09d}"
        path = target / f"dossier-{_slug(reason)}-{stamp}.json"
        path.write_text(
            json.dumps(self.build_dossier(reason, extra), indent=2, default=repr)
            + "\n",
            encoding="utf-8",
        )
        self.dossiers_written += 1
        return path

    # -- stats -------------------------------------------------------------

    def stats_dict(self) -> Dict[str, object]:
        return {
            "records": self.records_recorded,
            "slow_ops": self.slow_ops_recorded,
            "dossiers": self.dossiers_written,
            "buffered": len(self._events),
            "file": str(self._file_path) if self._file_path else None,
        }


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text)[:40] or "event"
