"""A unified metrics registry for the whole database.

Before this module, observability counters were scattered: ``ExtentStats``
on the evaluator, ``PageStats`` on the store, OID/slice counters on the
pool, ad-hoc ints elsewhere.  :class:`MetricsRegistry` puts one facade over
all of them without forcing a rewrite:

* **counters** — monotonically increasing values owned by the registry
  (``registry.counter("schema_changes").inc()``);
* **gauges** — point-in-time values, either set directly or *observed*
  through a callback (``registry.gauge("objects", callback=...)``) so
  existing component state is absorbed rather than duplicated;
* **histograms** — fixed-boundary bucketed distributions (span durations),
  optionally labelled;
* **groups** — named providers returning whole dicts (``pages``,
  ``extents``), preserving the nested shape ``Database.stats()`` always had.

Everything is exportable two ways: :meth:`MetricsRegistry.snapshot` (the
JSON/dict shape ``Database.stats()`` now delegates to) and
:meth:`MetricsRegistry.to_prometheus` (the text exposition format, so a
scraper — or a test — can consume the same numbers).

Instruments and the registry are thread-safe: each instrument guards its
own mutation/read with a small per-instrument lock (a ``Histogram`` update
touches ``sum``, ``count`` *and* a bucket — three separate writes that
threads would otherwise tear, leaving ``count != sum(bucket counts)`` in a
snapshot), and the registry serialises its get-or-create maps so two
threads asking for the same name always receive the same object.  Gauge
callbacks are invoked *outside* the registry lock — they read live
component state and may themselves take component locks.
"""

from __future__ import annotations

import re
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram boundaries (seconds), Prometheus-style
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric-name fragment."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


class Counter:
    """A monotonically increasing value (resettable for benchmarking)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value: set directly, or observed via callback."""

    __slots__ = ("name", "help", "_value", "_callback", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], object]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value: object = 0
        self._callback = callback
        self._lock = threading.Lock()

    def set(self, value: object) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value = value

    @property
    def value(self) -> object:
        if self._callback is not None:
            return self._callback()  # outside the lock: may consult live state
        with self._lock:
            return self._value

    def reset(self) -> None:
        if self._callback is None:
            with self._lock:
                self._value = 0


class Histogram:
    """Fixed-boundary bucketed distribution of observed values."""

    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # sum/count/bucket are three writes; the lock keeps the invariant
        # count == sum(bucket counts) visible to any concurrent snapshot
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self.counts)
            total = self.count
            observed_sum = self.sum
        cumulative = 0
        buckets = {}
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            buckets[str(bound)] = cumulative
        buckets["+Inf"] = total
        return {
            "count": total,
            "sum": round(observed_sum, 6),
            "buckets": buckets,
        }


class MetricsRegistry:
    """One registry over counters, gauges, histograms and stat groups.

    Instruments are get-or-create: calling :meth:`counter` twice with the
    same name returns the same object, so components never coordinate on
    construction order.  Registration order is preserved and becomes the
    key order of :meth:`snapshot` — the key-stability contract of
    ``Database.stats()``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._groups: Dict[str, Callable[[], Mapping[str, object]]] = {}
        #: family name -> label-key -> Histogram
        self._histograms: Dict[str, Dict[Tuple[Tuple[str, str], ...], Histogram]] = {}
        #: snapshot key order across all instrument kinds
        self._order: List[Tuple[str, str]] = []
        #: guards the get-or-create maps and ``_order``; re-entrant because
        #: ``timed_observe`` calls :meth:`histogram` which may re-enter
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = Counter(name, help)
                self._counters[name] = instrument
                self._order.append(("counter", name))
        return instrument

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], object]] = None,
    ) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name)
                instrument = Gauge(name, help, callback)
                self._gauges[name] = instrument
                self._order.append(("gauge", name))
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        with self._lock:
            family = self._histograms.get(name)
            if family is None:
                self._check_free(name)
                family = {}
                self._histograms[name] = family
                self._order.append(("histogram", name))
            key = tuple(sorted((labels or {}).items()))
            instrument = family.get(key)
            if instrument is None:
                instrument = Histogram(name, buckets=buckets, help=help, labels=labels)
                family[key] = instrument
        return instrument

    def register_group(
        self, name: str, provider: Callable[[], Mapping[str, object]]
    ) -> None:
        """Absorb an existing stats object: ``provider()`` returns its dict.

        Re-registering a name replaces the provider (databases rebuild
        component wiring on restore)."""
        with self._lock:
            if name not in self._groups:
                self._check_free(name)
                self._order.append(("group", name))
            self._groups[name] = provider

    # -- timing helpers ----------------------------------------------------

    def timed_observe(
        self,
        name: str,
        seconds: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        """Record one duration into the ``name`` histogram family.

        Keyword arguments become histogram labels, so one family can hold
        e.g. checkpoint vs. recovery timings side by side
        (``timed_observe("durability_seconds", dt, op="checkpoint")``).
        """
        self.histogram(name, buckets=buckets, labels=labels or None).observe(seconds)

    @contextmanager
    def timed(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ):
        """Context manager timing its block into the ``name`` histogram —
        the duration is recorded even when the block raises."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timed_observe(
                name, time.perf_counter() - start, buckets=buckets, **labels
            )

    def _check_free(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._groups
            or name in self._histograms
        ):
            raise ValueError(f"metric name {name!r} already registered as another kind")

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All instruments as one JSON-ready dict, in registration order."""
        with self._lock:
            order = list(self._order)
        result: Dict[str, object] = {}
        for kind, name in order:
            if kind == "counter":
                result[name] = self._counters[name].value
            elif kind == "gauge":
                result[name] = self._gauges[name].value
            elif kind == "group":
                result[name] = dict(self._groups[name]())
            else:  # histogram family
                family = self._histograms[name]
                if len(family) == 1 and () in family:
                    result[name] = family[()].as_dict()
                else:
                    result[name] = {
                        "{%s}" % ",".join(f"{k}={v}" for k, v in key): hist.as_dict()
                        for key, hist in sorted(family.items())
                    }
        return result

    def to_prometheus(self, prefix: str = "tse_") -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            order = list(self._order)
        lines: List[str] = []
        for kind, name in order:
            metric = prefix + _sanitize(name)
            if kind == "counter":
                counter = self._counters[name]
                if counter.help:
                    lines.append(f"# HELP {metric} {counter.help}")
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric}_total {_fmt(counter.value)}")
            elif kind == "gauge":
                gauge = self._gauges[name]
                value = gauge.value
                if not isinstance(value, (int, float)):
                    continue  # non-numeric gauges are snapshot-only
                if gauge.help:
                    lines.append(f"# HELP {metric} {gauge.help}")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_fmt(value)}")
            elif kind == "group":
                for key, value in self._groups[name]().items():
                    if not isinstance(value, (int, float)):
                        continue
                    flat = f"{metric}_{_sanitize(str(key))}"
                    lines.append(f"# TYPE {flat} gauge")
                    lines.append(f"{flat} {_fmt(value)}")
            else:  # histogram family
                lines.append(f"# TYPE {metric} histogram")
                for _, hist in sorted(self._histograms[name].items()):
                    label_prefix = dict(hist.labels)
                    state = hist.as_dict()  # locked, internally consistent
                    for bound, cumulative in state["buckets"].items():
                        le = bound if bound == "+Inf" else _fmt(float(bound))
                        labels = _labels({**label_prefix, "le": le})
                        lines.append(f"{metric}_bucket{labels} {cumulative}")
                    base = _labels(label_prefix)
                    lines.append(f"{metric}_sum{base} {_fmt(state['sum'])}")
                    lines.append(f"{metric}_count{base} {state['count']}")
        return "\n".join(lines) + "\n"

    # -- maintenance -------------------------------------------------------

    def reset(self) -> None:
        """Zero every registry-owned value (callback gauges are untouched —
        they mirror live component state, which owns its own reset)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for family in self._histograms.values():
            for hist in family.values():
                hist.reset()


def _fmt(value: object) -> str:
    """Numbers without trailing noise (ints stay ints, bools become 0/1)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"
