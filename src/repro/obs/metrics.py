"""A unified metrics registry for the whole database.

Before this module, observability counters were scattered: ``ExtentStats``
on the evaluator, ``PageStats`` on the store, OID/slice counters on the
pool, ad-hoc ints elsewhere.  :class:`MetricsRegistry` puts one facade over
all of them without forcing a rewrite:

* **counters** — monotonically increasing values owned by the registry
  (``registry.counter("schema_changes").inc()``), optionally labelled so
  one family can attribute work per session / per record type;
* **gauges** — point-in-time values, either set directly or *observed*
  through a callback (``registry.gauge("objects", callback=...)``) so
  existing component state is absorbed rather than duplicated;
* **histograms** — fixed-boundary bucketed distributions (span durations),
  optionally labelled, with streaming p50/p95/p99 estimates interpolated
  from the buckets (the ``histogram_quantile`` construction, O(1) memory);
* **groups** — named providers returning whole dicts (``pages``,
  ``extents``), preserving the nested shape ``Database.stats()`` always had.

Dimensional metrics are *families*: ``counter("session_reads",
labels={"session": "r3"})`` get-or-creates one child per label set under a
single family name.  Label cardinality is budgeted per family
(:data:`LABEL_CARDINALITY_BUDGET`): once a family holds that many children,
further label sets collapse into a single ``_other_`` child instead of
growing without bound — a mis-labelled hot loop degrades one series, never
the process.

Everything is exportable two ways: :meth:`MetricsRegistry.snapshot` (the
JSON/dict shape ``Database.stats()`` now delegates to) and
:meth:`MetricsRegistry.to_prometheus` (the text exposition format, so a
scraper — or a test — can consume the same numbers).  Bucket boundaries are
rendered through one canonical formatter in *both* exports, and
``observe()`` uses the same inclusive upper-bound (``value <= le``)
semantics Prometheus defines for ``le`` — the JSON snapshot and the
``_bucket`` series can be compared key-for-key.

Instruments and the registry are thread-safe: each instrument guards its
own mutation/read with a small per-instrument lock (a ``Histogram`` update
touches ``sum``, ``count`` *and* a bucket — three separate writes that
threads would otherwise tear, leaving ``count != sum(bucket counts)`` in a
snapshot), and the registry serialises its get-or-create maps so two
threads asking for the same name always receive the same object.  Gauge
callbacks are invoked *outside* the registry lock — they read live
component state and may themselves take component locks.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "LABEL_CARDINALITY_BUDGET",
    "OVERFLOW_LABEL",
]

#: default histogram boundaries (seconds), Prometheus-style
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: quantiles estimated on every histogram snapshot
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

#: children a single family may hold before new label sets collapse
LABEL_CARDINALITY_BUDGET = 64

#: label value absorbing over-budget label sets
OVERFLOW_LABEL = "_other_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: a normalised label set: sorted (key, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric-name fragment."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


class Counter:
    """A monotonically increasing value (resettable for benchmarking)."""

    __slots__ = ("name", "help", "labels", "value", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A point-in-time value: set directly, or observed via callback."""

    __slots__ = ("name", "help", "labels", "_value", "_callback", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], object]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._value: object = 0
        self._callback = callback
        self._lock = threading.Lock()

    def set(self, value: object) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value = value

    @property
    def value(self) -> object:
        if self._callback is not None:
            return self._callback()  # outside the lock: may consult live state
        with self._lock:
            return self._value

    def reset(self) -> None:
        if self._callback is None:
            with self._lock:
                self._value = 0


class Histogram:
    """Fixed-boundary bucketed distribution of observed values."""

    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.buckets = tuple(float(bound) for bound in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # The bucket is the first bound >= value — the inclusive ``le``
        # semantics of the Prometheus cumulative export.  bisect_left lands
        # on the bound itself when value == bound, so boundary observations
        # count into the bucket whose ``le`` equals them, exactly as a
        # scraper computing ``value <= le`` would expect.
        index = bisect_left(self.buckets, value)
        # sum/count/bucket are three writes; the lock keeps the invariant
        # count == sum(bucket counts) visible to any concurrent snapshot
        with self._lock:
            self.sum += value
            self.count += 1
            self.counts[index] += 1

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0

    def quantile(self, q: float) -> float:
        """Streaming quantile interpolated from bucket boundaries.

        The ``histogram_quantile`` construction: find the bucket the rank
        falls in, interpolate linearly inside it.  Observations beyond the
        last finite bound clamp to that bound (there is no upper edge to
        interpolate towards)."""
        with self._lock:
            counts = list(self.counts)
            total = self.count
        return self._quantile_from(q, counts, total)

    def _quantile_from(self, q: float, counts: List[int], total: int) -> float:
        if total <= 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, counts):
            if cumulative + bucket_count >= rank:
                if bucket_count == 0:
                    return lower
                fraction = (rank - cumulative) / bucket_count
                return lower + (bound - lower) * fraction
            cumulative += bucket_count
            lower = bound
        return self.buckets[-1]

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self.counts)
            total = self.count
            observed_sum = self.sum
        cumulative = 0
        buckets = {}
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            buckets[_fmt(bound)] = cumulative
        buckets["+Inf"] = total
        return {
            "count": total,
            "sum": round(observed_sum, 6),
            "buckets": buckets,
            "p50": round(self._quantile_from(0.5, counts, total), 6),
            "p95": round(self._quantile_from(0.95, counts, total), 6),
            "p99": round(self._quantile_from(0.99, counts, total), 6),
        }


class MetricsRegistry:
    """One registry over counters, gauges, histograms and stat groups.

    Instruments are get-or-create: calling :meth:`counter` twice with the
    same name (and label set) returns the same object, so components never
    coordinate on construction order.  Registration order is preserved and
    becomes the key order of :meth:`snapshot` — the key-stability contract
    of ``Database.stats()``.  Every instrument kind is a *family*: the
    unlabelled child renders exactly as before (a bare scalar / histogram
    dict), labelled children render under ``{k=v,...}`` keys.
    """

    def __init__(self, label_budget: int = LABEL_CARDINALITY_BUDGET) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelKey, Gauge]] = {}
        self._groups: Dict[str, Callable[[], Mapping[str, object]]] = {}
        #: family name -> label-key -> Histogram
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}
        #: snapshot key order across all instrument kinds
        self._order: List[Tuple[str, str]] = []
        self._label_budget = max(1, label_budget)
        #: guards the get-or-create maps and ``_order``; re-entrant because
        #: ``timed_observe`` calls :meth:`histogram` which may re-enter
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------

    def _admit(
        self, family: Dict[LabelKey, object], key: LabelKey
    ) -> LabelKey:
        """Enforce the per-family cardinality budget.

        A new label set beyond the budget is redirected onto the overflow
        child (same label *keys*, every value ``_other_``) so the family
        stays bounded no matter what a caller interpolates into labels."""
        if key and key not in family and len(family) >= self._label_budget:
            return tuple((k, OVERFLOW_LABEL) for k, _ in key)
        return key

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        with self._lock:
            family = self._counters.get(name)
            if family is None:
                self._check_free(name)
                family = {}
                self._counters[name] = family
                self._order.append(("counter", name))
            key = self._admit(family, _label_key(labels))
            instrument = family.get(key)
            if instrument is None:
                instrument = Counter(name, help, labels=dict(key))
                family[key] = instrument
        return instrument

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Optional[Callable[[], object]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        with self._lock:
            family = self._gauges.get(name)
            if family is None:
                self._check_free(name)
                family = {}
                self._gauges[name] = family
                self._order.append(("gauge", name))
            key = self._admit(family, _label_key(labels))
            instrument = family.get(key)
            if instrument is None:
                instrument = Gauge(name, help, callback, labels=dict(key))
                family[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        with self._lock:
            family = self._histograms.get(name)
            if family is None:
                self._check_free(name)
                family = {}
                self._histograms[name] = family
                self._order.append(("histogram", name))
            key = self._admit(family, _label_key(labels))
            instrument = family.get(key)
            if instrument is None:
                instrument = Histogram(
                    name, buckets=buckets, help=help, labels=dict(key)
                )
                family[key] = instrument
        return instrument

    def register_group(
        self, name: str, provider: Callable[[], Mapping[str, object]]
    ) -> None:
        """Absorb an existing stats object: ``provider()`` returns its dict.

        Re-registering a name replaces the provider (databases rebuild
        component wiring on restore)."""
        with self._lock:
            if name not in self._groups:
                self._check_free(name)
                self._order.append(("group", name))
            self._groups[name] = provider

    # -- timing helpers ----------------------------------------------------

    def timed_observe(
        self,
        name: str,
        seconds: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        """Record one duration into the ``name`` histogram family.

        Keyword arguments become histogram labels, so one family can hold
        e.g. checkpoint vs. recovery timings side by side
        (``timed_observe("durability_seconds", dt, op="checkpoint")``).
        """
        self.histogram(name, buckets=buckets, labels=labels or None).observe(seconds)

    @contextmanager
    def timed(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ):
        """Context manager timing its block into the ``name`` histogram —
        the duration is recorded even when the block raises."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timed_observe(
                name, time.perf_counter() - start, buckets=buckets, **labels
            )

    def _check_free(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._groups
            or name in self._histograms
        ):
            raise ValueError(f"metric name {name!r} already registered as another kind")

    # -- export ------------------------------------------------------------

    @staticmethod
    def _family_snapshot(
        family: Mapping[LabelKey, object], render: Callable[[object], object]
    ) -> object:
        """One family as snapshot JSON: bare value when unlabelled, a
        ``{k=v}``-keyed dict once labelled children exist."""
        if len(family) == 1 and () in family:
            return render(family[()])
        out = {}
        for key, child in sorted(family.items()):
            label = "{%s}" % ",".join(f"{k}={v}" for k, v in key)
            out[label] = render(child)
        return out

    def describe(self) -> List[Dict[str, object]]:
        """The instrument inventory, in registration order.

        One row per family: ``{"name", "kind", "labels", "help"}`` where
        ``labels`` is the sorted union of label keys across the family's
        children and ``help`` is the first non-empty help string among
        them.  ``docs/OPERATIONS.md``'s metrics reference is generated
        from these rows (:func:`repro.tools.metrics_reference_markdown`),
        so the table cannot drift from the code."""
        with self._lock:
            order = list(self._order)
            rows: List[Dict[str, object]] = []
            for kind, name in order:
                if kind == "group":
                    rows.append(
                        {"name": name, "kind": "group", "labels": [], "help": ""}
                    )
                    continue
                family_map = {
                    "counter": self._counters,
                    "gauge": self._gauges,
                    "histogram": self._histograms,
                }[kind]
                family = family_map[name]
                label_keys = sorted({k for key in family for k, _ in key})
                help_text = next(
                    (child.help for child in family.values() if child.help), ""
                )
                rows.append(
                    {
                        "name": name,
                        "kind": kind,
                        "labels": label_keys,
                        "help": help_text,
                    }
                )
        return rows

    def snapshot(self) -> Dict[str, object]:
        """All instruments as one JSON-ready dict, in registration order."""
        with self._lock:
            order = list(self._order)
        result: Dict[str, object] = {}
        for kind, name in order:
            if kind == "counter":
                result[name] = self._family_snapshot(
                    self._counters[name], lambda c: c.value
                )
            elif kind == "gauge":
                result[name] = self._family_snapshot(
                    self._gauges[name], lambda g: g.value
                )
            elif kind == "group":
                result[name] = dict(self._groups[name]())
            else:  # histogram family
                result[name] = self._family_snapshot(
                    self._histograms[name], lambda h: h.as_dict()
                )
        return result

    def to_prometheus(self, prefix: str = "tse_") -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            order = list(self._order)
        lines: List[str] = []
        for kind, name in order:
            metric = prefix + _sanitize(name)
            if kind == "counter":
                family = self._counters[name]
                helps = [c.help for c in family.values() if c.help]
                if helps:
                    lines.append(f"# HELP {metric} {helps[0]}")
                lines.append(f"# TYPE {metric} counter")
                for _, counter in sorted(family.items()):
                    labels = _labels(counter.labels)
                    lines.append(f"{metric}_total{labels} {_fmt(counter.value)}")
            elif kind == "gauge":
                family = self._gauges[name]
                emitted_type = False
                for _, gauge in sorted(family.items()):
                    value = gauge.value
                    if not isinstance(value, (int, float)):
                        continue  # non-numeric gauges are snapshot-only
                    if not emitted_type:
                        if gauge.help:
                            lines.append(f"# HELP {metric} {gauge.help}")
                        lines.append(f"# TYPE {metric} gauge")
                        emitted_type = True
                    labels = _labels(gauge.labels)
                    lines.append(f"{metric}{labels} {_fmt(value)}")
            elif kind == "group":
                for key, value in self._groups[name]().items():
                    if not isinstance(value, (int, float)):
                        continue
                    flat = f"{metric}_{_sanitize(str(key))}"
                    lines.append(f"# TYPE {flat} gauge")
                    lines.append(f"{flat} {_fmt(value)}")
            else:  # histogram family
                lines.append(f"# TYPE {metric} histogram")
                for _, hist in sorted(self._histograms[name].items()):
                    label_prefix = dict(hist.labels)
                    state = hist.as_dict()  # locked, internally consistent
                    for bound, cumulative in state["buckets"].items():
                        labels = _labels({**label_prefix, "le": bound})
                        lines.append(f"{metric}_bucket{labels} {cumulative}")
                    base = _labels(label_prefix)
                    lines.append(f"{metric}_sum{base} {_fmt(state['sum'])}")
                    lines.append(f"{metric}_count{base} {state['count']}")
        return "\n".join(lines) + "\n"

    # -- maintenance -------------------------------------------------------

    def reset(self) -> None:
        """Zero every registry-owned value (callback gauges are untouched —
        they mirror live component state, which owns its own reset)."""
        for family in self._counters.values():
            for counter in family.values():
                counter.reset()
        for family in self._gauges.values():
            for gauge in family.values():
                gauge.reset()
        for family in self._histograms.values():
            for hist in family.values():
                hist.reset()


def _fmt(value: object) -> str:
    """Numbers without trailing noise (ints stay ints, bools become 0/1)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"
