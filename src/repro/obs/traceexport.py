"""Chrome trace-event export: span trees as Perfetto-loadable JSON.

The tracer's ring buffer holds span *trees* (``Span.children``); trace
viewers want the flat `trace-event format`__ — a ``traceEvents`` array of
complete events (``"ph": "X"``) with microsecond ``ts``/``dur``.  This
module flattens the forest:

* every span becomes one ``X`` event: ``name``, ``cat`` (root name, so a
  whole pipeline run filters as one category), ``ts``/``dur`` in µs on the
  tracer's ``perf_counter`` timeline, ``pid``/``tid``;
* nesting is carried twice — implicitly by the viewer's stacking of
  overlapping ``ts`` ranges on one ``tid``, and *explicitly* via
  ``args.span_id`` / ``args.parent_id``, so a consumer (or a test) can
  reconstruct the exact parent/child tree without timestamp heuristics;
* span attributes ride along in ``args`` (objects rechecked, classifier
  verdicts, error markers) — visible in the Perfetto side panel.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

The export is pure data-out: it never mutates the tracer, and an empty ring
produces a valid empty trace.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["to_trace_events", "export_chrome_trace", "reconstruct_tree"]


def to_trace_events(roots, pid: int = 1) -> List[Dict[str, object]]:
    """Flatten finished root spans into trace-event dicts.

    Each root tree lands on its own ``tid`` (1-based, in ring order) so
    sequential pipeline runs render as separate tracks instead of one
    misleading stack."""
    events: List[Dict[str, object]] = []
    next_id = 1
    for tid, root in enumerate(roots, start=1):
        stack = [(root, None)]
        while stack:
            span, parent_id = stack.pop()
            span_id = next_id
            next_id += 1
            args: Dict[str, object] = {
                str(k): _arg(v) for k, v in span.attributes.items()
            }
            args["span_id"] = span_id
            if parent_id is not None:
                args["parent_id"] = parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": root.name,
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            # reversed: pop() order then preserves document order
            for child in reversed(span.children):
                stack.append((child, span_id))
    return events


def export_chrome_trace(tracer, path=None, pid: int = 1) -> Dict[str, object]:
    """The tracer's ring as a complete Chrome trace object.

    Returns the dict; additionally writes it as JSON when ``path`` is
    given (the CLI's ``.trace export FILE``)."""
    trace = {
        "traceEvents": to_trace_events(tracer.traces(), pid=pid),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "spans": tracer.spans_recorded},
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=2)
            handle.write("\n")
    return trace


def reconstruct_tree(events) -> List[Dict[str, object]]:
    """Rebuild the span forest from exported events via explicit ids.

    The inverse of :func:`to_trace_events` (names + nesting; durations are
    viewer concerns) — used by tests to prove the export round-trips
    parent/child structure, and by tooling that wants the tree back
    without a trace viewer."""
    nodes: Dict[int, Dict[str, object]] = {}
    roots: List[Dict[str, object]] = []
    for event in events:
        args = event.get("args", {})
        nodes[args["span_id"]] = {"name": event["name"], "children": []}
    for event in events:
        args = event.get("args", {})
        node = nodes[args["span_id"]]
        parent_id: Optional[int] = args.get("parent_id")
        if parent_id is None:
            roots.append(node)
        else:
            nodes[parent_id]["children"].append(node)
    return roots


def _arg(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
