"""Span-based tracing for the TSE schema-change pipeline.

The paper's transparency makes the pipeline invisible by design: a schema
change against a view is silently translated into ``defineVC`` statements,
classified into the global schema, and substituted behind the view name
(sections 3 and 5).  :class:`Tracer` makes that pipeline observable without
changing it — each stage opens a *span* (a named, timed, attributed region),
spans nest into a tree per top-level operation, and finished root spans land
in a bounded ring buffer for ``.trace show`` / benchmark export.

Design constraints, in order:

1. **Zero overhead when disabled.**  ``Tracer.span(...)`` returns a shared
   no-op singleton without allocating when ``enabled`` is False, and the hot
   paths (extent maintenance) additionally guard on the plain ``enabled``
   attribute so a disabled tracer costs one attribute read and one branch.
2. **No globals.**  Every :class:`~repro.core.database.TseDatabase` owns its
   tracer (via ``db.obs``); standalone components default to a private
   disabled tracer so they never need ``None`` checks.
3. **Plain data out.**  Finished spans expose ``as_dict()`` /
   ``render_lines()`` so the CLI, tests and benchmarks consume the same
   structure.
4. **Thread-aware.**  Each thread nests spans on its *own* stack
   (``threading.local``), so concurrent sessions never splice their spans
   into each other's trees; finished roots from every thread land in one
   shared ring buffer whose append is guarded together with the
   ``spans_recorded`` counter.  Readers of the ring take no lock — they
   copy the deque (append/iterate are safe under CPython) and may at worst
   miss a span finishing concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "phase_breakdown"]


class Span:
    """One timed, attributed region of work; spans nest into trees.

    Obtained from :meth:`Tracer.span` and used as a context manager::

        with tracer.span("classify", class_name="Student'") as span:
            ...
            span.set(created=True)
    """

    __slots__ = ("name", "attributes", "start", "end", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # -- data --------------------------------------------------------------

    def set(self, **attributes: object) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_s(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1000.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given span name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }

    def render_lines(self, indent: int = 0) -> List[str]:
        """Human-readable nested rendering (the ``.trace show`` format)."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attributes.items())
        line = f"{'  ' * indent}{self.name} ({self.duration_ms:.3f} ms)"
        if attrs:
            line += f"  {attrs}"
        lines = [line]
        for child in self.children:
            lines.extend(child.render_lines(indent + 1))
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, {len(self.children)} children)"


class _NullSpan:
    """The shared do-nothing span handed out by a disabled tracer.

    Supports the full :class:`Span` surface so call sites never branch on
    tracer state; every operation is a no-op returning inert values.
    """

    __slots__ = ()

    name = ""
    attributes: Dict[str, object] = {}
    children: List[Span] = []
    duration_s = 0.0
    duration_ms = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"name": "", "duration_ms": 0.0, "attributes": {}, "children": []}

    def render_lines(self, indent: int = 0) -> List[str]:
        return []


#: module-level singleton: the only _NullSpan ever handed out
NULL_SPAN = _NullSpan()

#: histogram bucket boundaries (seconds) for span durations — spans range
#: from microsecond extent deltas to multi-millisecond pipeline runs
SPAN_DURATION_BUCKETS = (
    0.00001, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)


class Tracer:
    """Owns the span stack and the ring buffer of recent root spans.

    Disabled by default; enable with :meth:`enable` (or the shell's
    ``.trace on``).  When a metrics registry is attached, every finished
    span also feeds the ``span_duration_seconds`` histogram labelled by
    span name, so per-phase latency distributions survive after the ring
    buffer rotates.
    """

    def __init__(self, metrics=None, ring_size: int = 64) -> None:
        self.enabled = False
        self._metrics = metrics
        self._local = threading.local()  # per-thread span stack
        self._ring: deque = deque(maxlen=ring_size)
        self.spans_recorded = 0
        self._lock = threading.Lock()  # guards ring append + spans_recorded
        #: every thread's live stack, for open-span forensics (flight dossiers)
        self._stacks: List[List[Span]] = []
        #: called with each finished *root* span (outside the ring lock);
        #: the flight recorder hangs its slow-op detector here
        self.on_root = None

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._stacks.append(stack)
        return stack

    def open_spans(self) -> List[Span]:
        """Spans currently open on *any* thread, outermost first per thread.

        A crash dossier wants to know what was in flight, not just what
        finished — this reads every thread's live stack (append/iterate on
        lists are safe under CPython; at worst a span mid-close is missed).
        """
        with self._lock:
            stacks = list(self._stacks)
        return [span for stack in stacks for span in list(stack)]

    # -- switching ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Turn tracing off and drop any half-open span stack.

        Only the calling thread's stack can be dropped; other threads'
        in-flight spans finish harmlessly into their own stacks."""
        self.enabled = False
        self._stack.clear()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, /, **attributes: object):
        """A new child span of whatever span is currently open.

        Returns the shared :data:`NULL_SPAN` when disabled — no allocation,
        no recording, no attribute evaluation beyond the call itself.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attributes)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack  # this thread's stack: no lock needed
        # tolerate a stack cleared by disable() mid-span
        if stack and stack[-1] is span:
            stack.pop()
        finished_root = False
        with self._lock:
            if stack:
                stack[-1].children.append(span)
            else:
                self._ring.append(span)
                finished_root = True
            self.spans_recorded += 1
        if self._metrics is not None:
            self._metrics.histogram(
                "span_duration_seconds",
                buckets=SPAN_DURATION_BUCKETS,
                labels={"span": span.name},
            ).observe(span.duration_s)
        if finished_root and self.on_root is not None:
            self.on_root(span)

    # -- reading back ------------------------------------------------------

    def traces(self, limit: Optional[int] = None) -> List[Span]:
        """Recent finished root spans, oldest first; ``limit`` keeps the
        newest N."""
        spans = list(self._ring)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def last(self) -> Optional[Span]:
        return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.spans_recorded = 0


def phase_breakdown(spans: List[Span]) -> Dict[str, Dict[str, float]]:
    """Aggregate a span forest into per-phase totals.

    Returns ``{span_name: {"count": n, "total_ms": t}}`` over every span in
    every tree — the shape the benchmarks export into ``BENCH_*.json`` so a
    run records time-in-translate vs time-in-classify, not just wall time.
    """
    result: Dict[str, Dict[str, float]] = {}
    for root in spans:
        for span in root.walk():
            entry = result.setdefault(span.name, {"count": 0, "total_ms": 0.0})
            entry["count"] += 1
            entry["total_ms"] += span.duration_ms
    for entry in result.values():
        entry["total_ms"] = round(entry["total_ms"], 4)
    return result
