"""Fleet simulator: checked rolling-deploy scenarios over view versions.

The paper's promise is that *many* applications keep running unchanged
while the schema evolves underneath them — old apps pinned to historical
view-schema versions, new apps on the current one, §7 merges reconciling
concurrent evolution.  This package turns that promise into executable
stories:

* :class:`~repro.scenarios.fleet.Fleet` compiles named deployment steps
  (``deploy``/``roll``/``app_write``/``retire``/``merge`` …) into the
  differential-checking command vocabulary, applying each step to a live
  :class:`~repro.checking.runner.DifferentialHarness` as it is emitted —
  authoring a scenario *is* running it lockstep against the reference
  oracle;
* :mod:`~repro.scenarios.library` names the rolling-deploy scenarios
  (blue/green flip, canary-then-roll, long-tail laggard, crash-mid-roll,
  …) and :func:`~repro.scenarios.library.build_scenario` compiles one
  into a plain command list that replays deterministically under any
  migration mode.

A divergence anywhere raises :class:`~repro.checking.runner.Divergence`,
and the resulting command list shrinks through the ordinary ddmin corpus
machinery (:mod:`repro.checking.minimize`).
"""

from repro.scenarios.fleet import Fleet, FleetDivergence
from repro.scenarios.library import SCENARIOS, build_scenario, scenario_names

__all__ = [
    "Fleet",
    "FleetDivergence",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
]
