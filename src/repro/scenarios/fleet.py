"""The fleet builder: named deployment steps over a checked harness.

The differential vocabulary addresses schema elements through *blind
indices* (``view_i``/``cls_i``/… resolve modulo the oracle's sorted name
lists) so random generation is total.  Scenario authors want the
opposite: steps that name views, classes and attributes directly.
:class:`Fleet` bridges the two — every step method resolves its names
into indices against the live oracle state, emits one checking
:class:`~repro.checking.commands.Command`, and immediately applies it to
an embedded :class:`~repro.checking.runner.DifferentialHarness`.

Because resolution happens against the *oracle* (never the real system),
the compiled command list is exactly as replayable as a fuzzer-generated
one: ``run_commands(fleet.commands, migration_mode=...)`` re-runs the
scenario from scratch under any epoch-capture discipline, and ddmin can
shrink a diverging scenario into a corpus entry like any other failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.checking.commands import APP_SLOTS, Command, command_to_dict
from repro.checking.runner import DifferentialHarness, Divergence

#: re-export under a scenario-flavoured name so test code reads naturally
FleetDivergence = Divergence


class Fleet:
    """K simulated applications, each bound to a pinned view version,
    driven through a checked rolling deployment.

    Use as a context manager (the embedded harness owns a throwaway WAL
    directory and any open reader sessions)::

        with Fleet(migration_mode="lazy") as fleet:
            fleet.define_class("A", attrs=[("a0", False, 0)])
            fleet.create_view("V", ["A"])
            fleet.deploy(app=0, view="V")          # pin v1
            fleet.add_attribute("V", to="A", name="x", default=1)
            fleet.roll(app=0)                       # v1 -> v2
            commands = fleet.commands               # replayable anywhere
    """

    def __init__(
        self,
        migration_mode: Optional[str] = None,
        wal_dir=None,
    ) -> None:
        self._harness = DifferentialHarness(
            wal_dir, migration_mode=migration_mode
        )
        #: every emitted command, in order — the scenario's replayable form
        self.commands: List[Command] = []

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        self._harness.close()

    @property
    def model(self):
        """The reference oracle (read-only; name→index resolution source)."""
        return self._harness.model

    @property
    def apps(self) -> Dict[int, Tuple[str, int]]:
        """Live app bindings: slot -> (view, pinned version)."""
        return self._harness.apps

    # -- emission ------------------------------------------------------------

    def _emit(self, op: str, **args) -> str:
        command = Command(op, args)
        self.commands.append(command)
        return self._harness.apply(command)

    # -- name → blind-index resolution (against the oracle) ------------------

    def _view_i(self, name: str) -> int:
        return self.model.view_names().index(name)

    def _base_i(self, name: str) -> int:
        return self.model.user_bases.index(name)

    def _cls_i(self, view: str, cls: str, version: Optional[int] = None) -> int:
        return self.model.class_names(view, version).index(cls)

    def _attr_i(
        self, view: str, cls: str, attr: str, version: Optional[int] = None
    ) -> int:
        return self.model.attribute_names(view, cls, version).index(attr)

    def _version_sel(self, view: str, version: int) -> int:
        return self.model.versions_of(view).index(version)

    def _binding(self, app: int) -> Tuple[str, int]:
        binding = self.apps.get(app % APP_SLOTS)
        if binding is None:
            raise ValueError(f"app slot {app} has no deployment")
        return binding

    # -- authoring -----------------------------------------------------------

    def define_class(
        self,
        name: str,
        attrs: Sequence[Tuple[str, bool, object]] = (),
        parents: Sequence[str] = (),
    ) -> None:
        """Author a base class; ``attrs`` rows are (name, required, default)."""
        self._emit(
            "define_class",
            name=name,
            attrs=[
                {"name": a, "required": req, "default": dfl}
                for a, req, dfl in attrs
            ],
            parent_picks=[self._base_i(p) for p in parents],
        )

    def create_view(self, name: str, classes: Sequence[str]) -> None:
        self._emit(
            "create_view",
            name=name,
            picks=[self._base_i(c) for c in classes],
        )

    # -- durability ----------------------------------------------------------

    def enable_wal(self) -> None:
        self._emit("enable_wal")

    def checkpoint(self) -> None:
        self._emit("checkpoint")

    def crash(self, point: str = "checkpoint:before_rename") -> None:
        """Inject a crash at a checkpoint seam and recover (the fleet
        survives — pinned bindings are durable)."""
        self._emit("crash", point=point)

    def crash_during_write(
        self, view: str, cls: str, assigns: Optional[dict] = None
    ) -> None:
        """Die mid-WAL-append while creating an object: recovery truncates
        the torn record, so the write is lost on both sides."""
        inner = Command(
            "create",
            {
                "view_i": self._view_i(view),
                "cls_i": self._cls_i(view, cls),
                "assigns": [
                    [self._attr_i(view, cls, attr), value]
                    for attr, value in (assigns or {}).items()
                ],
            },
        )
        self._emit(
            "crash", point="wal:mid_append", inner=command_to_dict(inner)
        )

    def recover_clean(self) -> None:
        self._emit("recover_clean")

    def backfill(self, limit: Optional[int] = None) -> None:
        """Drain a bounded batch of pending lazy-migration captures."""
        self._emit("backfill_step", limit=limit)

    # -- epoch readers -------------------------------------------------------

    def reader_open(self, slot: int = 0) -> None:
        self._emit("reader_open", slot=slot)

    def reader_check(self, slot: int = 0) -> None:
        self._emit("reader_check", slot=slot)

    def reader_refresh(self, slot: int = 0) -> None:
        self._emit("reader_refresh", slot=slot)

    def reader_close(self, slot: int = 0) -> None:
        self._emit("reader_close", slot=slot)

    # -- schema evolution (through the current version) ------------------------

    def add_attribute(
        self, view: str, to: str, name: str, default: object = None
    ) -> None:
        self._emit(
            "add_attribute",
            view_i=self._view_i(view),
            to_i=self._cls_i(view, to),
            name=name,
            default=default,
        )

    def add_method(self, view: str, to: str, name: str) -> None:
        self._emit(
            "add_method",
            view_i=self._view_i(view),
            to_i=self._cls_i(view, to),
            name=name,
        )

    def add_class(
        self, view: str, name: str, connect_to: Optional[str] = None
    ) -> None:
        self._emit(
            "add_class",
            view_i=self._view_i(view),
            name=name,
            connect=connect_to is not None,
            conn_i=self._cls_i(view, connect_to) if connect_to else 0,
        )

    def insert_class(self, view: str, name: str, sup: str, sub: str) -> None:
        self._emit(
            "insert_class",
            view_i=self._view_i(view),
            name=name,
            sup_i=self._cls_i(view, sup),
            sub_i=self._cls_i(view, sub),
        )

    def delete_class_2(self, view: str, cls: str) -> None:
        self._emit(
            "delete_class_2",
            view_i=self._view_i(view),
            cls_i=self._cls_i(view, cls),
        )

    def merge(
        self,
        name: str,
        first: str,
        second: str,
        first_version: Optional[int] = None,
        second_version: Optional[int] = None,
    ) -> None:
        """Section 7 version merging; pin either source to a historical
        version to merge it rather than the current one."""
        self._emit(
            "merge_views",
            name=name,
            first_i=self._view_i(first),
            second_i=self._view_i(second),
            pin_first=first_version is not None,
            first_sel=(
                self._version_sel(first, first_version)
                if first_version is not None
                else 0
            ),
            pin_second=second_version is not None,
            second_sel=(
                self._version_sel(second, second_version)
                if second_version is not None
                else 0
            ),
        )

    def retire(self, view: str, version: int) -> None:
        self._emit(
            "retire_version",
            view_i=self._view_i(view),
            version_sel=self._version_sel(view, version),
        )

    # -- direct writes (through the current version) ---------------------------

    def create(self, view: str, cls: str, assigns: Optional[dict] = None) -> None:
        self._emit(
            "create",
            view_i=self._view_i(view),
            cls_i=self._cls_i(view, cls),
            assigns=[
                [self._attr_i(view, cls, attr), value]
                for attr, value in (assigns or {}).items()
            ],
        )

    def set(self, view: str, cls: str, obj: int, attr: str, value) -> None:
        """Set one attribute on the ``obj``-th object of the class extent."""
        self._emit(
            "set",
            view_i=self._view_i(view),
            cls_i=self._cls_i(view, cls),
            obj_i=obj,
            attr_i=self._attr_i(view, cls, attr),
            value=value,
        )

    # -- the fleet itself ------------------------------------------------------

    def deploy(self, app: int, view: str, version: Optional[int] = None) -> None:
        """Bind an app slot to a (view, version) pin — the simulated app
        ships against that schema version (default: the version current
        now) and keeps it until :meth:`roll` rebinds the slot."""
        if version is None:
            version = self.model.version(view)
        self._emit(
            "pin_view_version",
            app=app,
            view_i=self._view_i(view),
            version_sel=self._version_sel(view, version),
        )

    def roll(self, app: int) -> None:
        """Rolling upgrade: rebind the slot to the successor version."""
        self._emit("roll_app", app=app)

    def app_read(self, app: int) -> None:
        """Full pinned-dump comparison of the app's view version."""
        self._emit("read_via_version", app=app)

    def _app_write(self, app: int, inner: Command) -> None:
        self._emit(
            "write_via_version", app=app, inner=command_to_dict(inner)
        )

    def app_create(
        self, app: int, cls: str, assigns: Optional[dict] = None
    ) -> None:
        """Create an object through the app's pinned view version."""
        view, version = self._binding(app)
        self._app_write(
            app,
            Command(
                "create",
                {
                    "cls_i": self._cls_i(view, cls, version),
                    "assigns": [
                        [self._attr_i(view, cls, attr, version), value]
                        for attr, value in (assigns or {}).items()
                    ],
                },
            ),
        )

    def app_set(self, app: int, cls: str, obj: int, attr: str, value) -> None:
        view, version = self._binding(app)
        self._app_write(
            app,
            Command(
                "set",
                {
                    "cls_i": self._cls_i(view, cls, version),
                    "obj_i": obj,
                    "attr_i": self._attr_i(view, cls, attr, version),
                    "value": value,
                },
            ),
        )

    def app_add(self, app: int, cls: str, src: str, obj: int) -> None:
        """Add the ``obj``-th object of ``src`` to ``cls`` (both as the
        pinned version names them)."""
        view, version = self._binding(app)
        self._app_write(
            app,
            Command(
                "add",
                {
                    "cls_i": self._cls_i(view, cls, version),
                    "src_cls_i": self._cls_i(view, src, version),
                    "obj_i": obj,
                },
            ),
        )

    def app_remove(self, app: int, cls: str, obj: int) -> None:
        view, version = self._binding(app)
        self._app_write(
            app,
            Command(
                "remove",
                {"cls_i": self._cls_i(view, cls, version), "obj_i": obj},
            ),
        )

    def app_delete(self, app: int, cls: str, obj: int) -> None:
        view, version = self._binding(app)
        self._app_write(
            app,
            Command(
                "delete",
                {"cls_i": self._cls_i(view, cls, version), "obj_i": obj},
            ),
        )
