"""The named rolling-deploy scenarios.

Each scenario is a plain function ``(fleet, scale) -> None`` telling one
deployment story through :class:`~repro.scenarios.fleet.Fleet` steps;
``scale`` stretches the story (more objects, more rounds) without
changing its shape.  Compiling a scenario *is* checking it — every step
replays lockstep against the reference oracle — and the compiled command
list replays identically under lazy and eager migration.

The library covers the multi-version coexistence surface end to end:
blue/green and canary rollouts, laggards writing through long-retired
schemas, §7 merges after concurrent evolution (including writes arriving
through an *old* view version that must surface in a newer merged view),
epoch readers across lazy backfill, and crash/recovery mid-rollout.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.checking.commands import Command
from repro.scenarios.fleet import Fleet


def _seed_world(fleet: Fleet, scale: int) -> None:
    """The shared campus world: a tiny hierarchy, one view, some objects."""
    fleet.define_class("Person", attrs=[("name", False, 0), ("age", False, 0)])
    fleet.define_class("Student", attrs=[("gpa", False, 0)], parents=["Person"])
    fleet.define_class("Course", attrs=[("credits", False, 3)])
    fleet.create_view("Campus", ["Person", "Student", "Course"])
    for i in range(max(1, scale)):
        fleet.create("Campus", "Student", {"gpa": i})
        fleet.create("Campus", "Course", {"credits": i % 5})


def blue_green_flip(fleet: Fleet, scale: int) -> None:
    """Two app colours: blue pinned to v1, green ships on v2; traffic runs
    through both, then blue flips and v1 retires."""
    _seed_world(fleet, scale)
    fleet.deploy(app=0, view="Campus")  # blue on v1
    fleet.add_attribute("Campus", to="Person", name="email", default=0)
    fleet.deploy(app=1, view="Campus")  # green on v2
    for i in range(max(1, scale)):
        fleet.app_create(0, "Student", {"gpa": 10 + i})
        fleet.app_create(1, "Student", {"gpa": 20 + i, "email": i})
        fleet.app_read(0)
        fleet.app_read(1)
    fleet.roll(app=0)  # the flip
    fleet.app_read(0)
    fleet.retire("Campus", 1)
    fleet.app_create(0, "Student", {"gpa": 99})


def canary_then_roll(fleet: Fleet, scale: int) -> None:
    """Three apps on v1; one canary takes each new version first, reads
    and writes, then the rest roll one at a time."""
    _seed_world(fleet, scale)
    for app in range(3):
        fleet.deploy(app=app, view="Campus")
    fleet.add_attribute("Campus", to="Student", name="standing", default=1)
    fleet.roll(app=0)  # canary
    fleet.app_create(0, "Student", {"standing": 2})
    fleet.app_read(0)
    fleet.app_read(1)  # fleet majority still healthy on v1
    for app in (1, 2):
        fleet.roll(app=app)
        fleet.app_read(app)
    fleet.add_method("Campus", to="Person", name="greet")
    for app in range(3):
        fleet.roll(app=app)
        fleet.app_read(app)
    fleet.retire("Campus", 1)
    fleet.retire("Campus", 2)


def long_tail_laggard(fleet: Fleet, scale: int) -> None:
    """One app never upgrades while the schema walks several versions
    ahead; the laggard keeps reading *and writing* v1 throughout, then
    finally rolls through every intermediate version."""
    _seed_world(fleet, scale)
    fleet.deploy(app=0, view="Campus")  # the laggard
    fleet.deploy(app=1, view="Campus")
    for round_no in range(2 + scale):
        fleet.add_attribute(
            "Campus", to="Person", name=f"extra{round_no}", default=round_no
        )
        fleet.roll(app=1)
        fleet.app_create(0, "Student", {"gpa": round_no})  # via v1
        fleet.app_set(0, "Student", 0, "gpa", 40 + round_no)
        fleet.app_read(0)
        fleet.app_read(1)
    while fleet.apps[0][1] < fleet.model.version("Campus"):
        fleet.roll(app=0)
        fleet.app_read(0)


def write_through_old_view_during_lazy_migration(
    fleet: Fleet, scale: int
) -> None:
    """Writes arrive through the pre-evolution pin while the lazy backfill
    is still draining, interleaved step by step.  (Under eager capture the
    backfill steps are agreed no-ops — same command list, same story.)"""
    _seed_world(fleet, scale)
    fleet.deploy(app=0, view="Campus")
    fleet.reader_open(0)
    fleet.add_attribute("Campus", to="Student", name="track", default=0)
    for i in range(max(2, scale + 1)):
        fleet.app_create(0, "Student", {"gpa": 60 + i})  # old-view write
        fleet.backfill(limit=1)  # drain one pending capture
        fleet.app_read(0)
        fleet.reader_check(0)
    fleet.set("Campus", "Student", 0, "track", 7)  # current-view write
    fleet.backfill()
    fleet.app_read(0)
    fleet.reader_refresh(0)
    fleet.reader_check(0)
    fleet.reader_close(0)


def merge_after_concurrent_definevc(fleet: Fleet, scale: int) -> None:
    """Two departments evolve the same base world independently (§7's
    figure-16 divergence), then merge; an app still pinned to a
    *pre-divergence* version writes, and the write must surface through
    the merged view."""
    fleet.define_class("Person", attrs=[("name", False, 0)])
    fleet.define_class("Student", attrs=[("gpa", False, 0)], parents=["Person"])
    fleet.create_view("Reg", ["Person", "Student"])
    fleet.create_view("Lib", ["Person", "Student"])
    for i in range(max(1, scale)):
        fleet.create("Reg", "Student", {"gpa": i})
    fleet.deploy(app=0, view="Reg")  # pinned before any divergence
    fleet.add_attribute("Reg", to="Student", name="register", default=0)
    fleet.add_class("Lib", "Loans", connect_to="Person")  # concurrent definevc
    fleet.merge("Hub", "Reg", "Lib")
    fleet.deploy(app=1, view="Hub")
    fleet.app_create(0, "Student", {"gpa": 7})  # write through the OLD pin
    fleet.app_read(1)  # the merged view must see it
    fleet.app_read(0)
    # merging *historical* versions reaches further back than any pin
    fleet.merge("HubOld", "Reg", "Lib", first_version=1, second_version=1)
    fleet.deploy(app=2, view="HubOld")
    fleet.app_read(2)


def merge_suffix_chain(fleet: Fleet, scale: int) -> None:
    """Three same-named refinements meet through chained merges — the
    collision-suffix ladder (``_v2`` then ``_v2_2``) end to end, with
    traffic running through the doubly-merged view."""
    fleet.define_class("K", attrs=[("base", False, 0)])
    for view in ("V1", "V2", "V3"):
        fleet.create_view(view, ["K"])
    fleet.create("V1", "K", {"base": 1})
    fleet.add_attribute("V1", to="K", name="x", default=0)
    fleet.add_attribute("V2", to="K", name="y", default=0)
    fleet.merge("M1", "V1", "V2")
    fleet.add_attribute("V3", to="K", name="z", default=0)
    fleet.merge("M2", "M1", "V3")
    fleet.deploy(app=0, view="M2")
    fleet.app_read(0)
    for i in range(max(1, scale)):
        fleet.app_create(0, "K", {"x": i})
        fleet.app_read(0)


def crash_mid_roll(fleet: Fleet, scale: int) -> None:
    """The process dies in the middle of a rolling upgrade — mid WAL
    append and on both sides of a checkpoint rename; pinned bindings and
    histories must survive every recovery."""
    fleet.enable_wal()
    _seed_world(fleet, scale)
    fleet.deploy(app=0, view="Campus")
    fleet.deploy(app=1, view="Campus")
    fleet.add_attribute("Campus", to="Person", name="email", default=0)
    fleet.roll(app=0)
    fleet.crash_during_write("Campus", "Student", {"gpa": 50})
    fleet.app_read(0)
    fleet.app_read(1)
    fleet.checkpoint()
    fleet.crash("checkpoint:before_rename")
    fleet.app_create(1, "Student", {"gpa": 5})
    fleet.add_attribute("Campus", to="Course", name="room", default=0)
    fleet.crash("checkpoint:after_rename")
    fleet.recover_clean()
    fleet.roll(app=1)
    fleet.app_read(0)
    fleet.app_read(1)


def retire_then_laggard_write(fleet: Fleet, scale: int) -> None:
    """Operators retire a version an app is still pinned to: reads stay
    legal (forensics), writes become an *agreed* typed rejection, and the
    app recovers by rolling forward."""
    _seed_world(fleet, scale)
    fleet.deploy(app=0, view="Campus")
    fleet.add_attribute("Campus", to="Student", name="standing", default=1)
    fleet.retire("Campus", 1)
    fleet.app_read(0)  # reading a retired pin is fine
    fleet.app_create(0, "Student", {"gpa": 1})  # agreed rejection
    fleet.app_set(0, "Student", 0, "gpa", 9)  # still rejected
    fleet.roll(app=0)
    fleet.app_create(0, "Student", {"gpa": 1, "standing": 2})  # now lands
    fleet.app_read(0)


def concurrent_epoch_readers(fleet: Fleet, scale: int) -> None:
    """Snapshot readers pinned to different epochs while the schema keeps
    moving and the backfill drains under them."""
    _seed_world(fleet, scale)
    fleet.reader_open(0)
    fleet.add_attribute("Campus", to="Person", name="email", default=0)
    fleet.reader_open(1)  # one epoch later
    for i in range(max(1, scale)):
        fleet.create("Campus", "Student", {"gpa": 70 + i})
        fleet.reader_check(0)
        fleet.reader_check(1)
        fleet.backfill(limit=1)
    fleet.add_method("Campus", to="Course", name="enroll")
    fleet.reader_check(0)
    fleet.reader_refresh(0)
    fleet.reader_check(0)
    fleet.reader_close(0)
    fleet.reader_close(1)


def checkpoint_recover_fleet(fleet: Fleet, scale: int) -> None:
    """Retirement must ride along in checkpoints: retire, checkpoint,
    crash, recover — the version lifecycle (and the typed write
    rejection) must look identical afterwards."""
    fleet.enable_wal()
    _seed_world(fleet, scale)
    fleet.deploy(app=0, view="Campus")
    fleet.add_attribute("Campus", to="Person", name="email", default=0)
    fleet.deploy(app=1, view="Campus")
    fleet.retire("Campus", 1)
    fleet.checkpoint()
    fleet.crash_during_write("Campus", "Student", {"gpa": 4})
    fleet.app_read(0)
    fleet.app_create(0, "Student", {"gpa": 3})  # agreed retired rejection
    fleet.recover_clean()
    fleet.app_read(1)
    fleet.app_create(1, "Student", {"gpa": 3, "email": 1})


#: every named scenario, in a stable order
SCENARIOS: Dict[str, Callable[[Fleet, int], None]] = {
    "blue_green_flip": blue_green_flip,
    "canary_then_roll": canary_then_roll,
    "long_tail_laggard": long_tail_laggard,
    "write_through_old_view_during_lazy_migration":
        write_through_old_view_during_lazy_migration,
    "merge_after_concurrent_definevc": merge_after_concurrent_definevc,
    "merge_suffix_chain": merge_suffix_chain,
    "crash_mid_roll": crash_mid_roll,
    "retire_then_laggard_write": retire_then_laggard_write,
    "concurrent_epoch_readers": concurrent_epoch_readers,
    "checkpoint_recover_fleet": checkpoint_recover_fleet,
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def build_scenario(
    name: str,
    migration_mode: Optional[str] = None,
    scale: int = 1,
) -> List[Command]:
    """Compile one named scenario into its replayable command list.

    Compilation runs the scenario against a live differential harness, so
    a divergence raises :class:`~repro.checking.runner.Divergence` right
    here; the returned list replays via
    :func:`repro.checking.runner.run_commands` under any migration mode.
    """
    story = SCENARIOS[name]
    with Fleet(migration_mode=migration_mode) as fleet:
        story(fleet, scale)
        return list(fleet.commands)
