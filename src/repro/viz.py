"""Graphviz (dot) export for schemas and views.

The paper communicates through schema diagrams (figures 2-16); this module
renders the same pictures from live state so a reproduction run can be
inspected visually.  Output is plain ``dot`` text — no graphviz dependency;
pipe it through ``dot -Tsvg`` if the binary is available.

Conventions follow the paper: base classes are solid boxes, virtual classes
dashed ellipses; is-a edges are solid arrows from superclass to subclass;
derivation edges (source class → virtual class) are dotted, matching the
dotted derivation arrows of figure 12.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.schema.classes import ROOT_CLASS, BaseClass, VirtualClass
from repro.schema.graph import GlobalSchema
from repro.views.schema import ViewSchema


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def _class_label(schema: GlobalSchema, name: str, shown_as: Optional[str] = None) -> str:
    type_names = ", ".join(sorted(schema.type_of(name)))
    title = shown_as or name
    return f"{title}|{type_names}" if type_names else title


def schema_to_dot(
    schema: GlobalSchema,
    include_root: bool = False,
    include_internal: bool = False,
    show_derivations: bool = True,
) -> str:
    """Render the global schema as a dot digraph.

    ``include_internal`` also shows the helper classes evolution creates
    (names starting with ``_``, e.g. the diff/union temporaries of the
    delete-edge algorithm); they are hidden by default, like in the paper's
    figures.
    """
    lines: List[str] = [
        "digraph global_schema {",
        "  rankdir=BT;",
        '  node [fontsize=10, fontname="Helvetica"];',
    ]
    visible = []
    for name in schema.class_names():
        if name == ROOT_CLASS and not include_root:
            continue
        if name.startswith("_") and not include_internal:
            continue
        visible.append(name)
        cls = schema[name]
        if isinstance(cls, BaseClass):
            shape = "shape=box, style=solid"
        else:
            shape = "shape=ellipse, style=dashed"
        lines.append(
            f"  {_quote(name)} [{shape}, label={_quote(_class_label(schema, name))}];"
        )
    shown = set(visible)
    for sup in visible:
        for sub in schema.direct_subs(sup):
            if sub in shown:
                # is-a arrows point from subclass up to superclass (rankdir=BT)
                lines.append(f"  {_quote(sub)} -> {_quote(sup)};")
    if show_derivations:
        for name in visible:
            cls = schema[name]
            if isinstance(cls, VirtualClass):
                for source in cls.derivation.sources:
                    if source in shown:
                        lines.append(
                            f"  {_quote(source)} -> {_quote(name)} "
                            f'[style=dotted, arrowhead=open, label="{cls.derivation.op}"];'
                        )
    lines.append("}")
    return "\n".join(lines)


def view_to_dot(schema: GlobalSchema, view: ViewSchema) -> str:
    """Render one view schema as a dot digraph, in view-visible names."""
    lines: List[str] = [
        f"digraph {_quote(view.label.replace('.', '_'))} {{",
        "  rankdir=BT;",
        '  node [fontsize=10, fontname="Helvetica"];',
        f'  label="view {view.label}"; labelloc=t;',
    ]
    for global_name in sorted(view.selected):
        shown_as = view.view_name_of(global_name)
        cls = schema[global_name]
        shape = "shape=box, style=solid" if cls.is_base else "shape=ellipse, style=dashed"
        lines.append(
            f"  {_quote(shown_as)} "
            f"[{shape}, label={_quote(_class_label(schema, global_name, shown_as))}];"
        )
    for sup, sub in view.edges:
        lines.append(
            f"  {_quote(view.view_name_of(sub))} -> {_quote(view.view_name_of(sup))};"
        )
    lines.append("}")
    return "\n".join(lines)
