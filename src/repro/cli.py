"""``tse-shell`` — an interactive console over a TSE database.

Speaks the paper's command language (schema changes, ``defineVC``, generic
updates, ``merge``) plus a handful of meta-commands:

.. code-block:: text

    .help                 show this summary
    .views                list views and their current versions
    .use <view>           switch the session to another view
    .show                 print the current view schema
    .classes              list classes of the current view
    .extent <class>       list the objects of a class
    .history              print the evolution log
    .stats [reset]        database counters incl. extent-cache behaviour;
                          `reset` zeroes every resettable counter
    .metrics [--prom]     unified metrics registry as JSON (or Prometheus
                          text format with --prom)
    .sessions [on]        concurrent-session layer: attach it with `on`;
                          without arguments, show the latch / epoch /
                          session counters
    .trace on|off         enable/disable pipeline tracing
    .trace show [n]       render the last n recorded span trees (default 5)
    .trace export <file>  write the span ring as Chrome trace-event JSON
                          (open in Perfetto / chrome://tracing)
    .explain <stmt>       dry-run a schema-change statement: the defineVC
                          script, classifier dedup decisions, affected
                          extents, predicted rechecks and per-phase timings
                          — nothing is committed
    .top                  one-screen operational stats: per-op schema-change
                          latency quantiles, hottest spans, sessions, WAL,
                          flight recorder; `.top watch [secs]` refreshes
                          live until interrupted
    .flight show [n]      last n flight-recorder records (default 10)
    .flight dump [why]    write a crash dossier now; prints its path
    .flight dir <path>    set the dossier directory (enables automatic
                          dumps on failure / recovery / divergence)
    .flight log <file>    mirror flight records to a JSONL file (rotating)
    .compile [on|off]     predicate compilation: show status (with compiler
                          counters), or force the compiled / interpreted
                          evaluator for this process
    .batch begin          start collecting update statements instead of
                          executing them
    .batch commit         apply the collected updates as ONE atomic batch
                          (`TseDatabase.apply_many`: one latch, one WAL
                          group commit, all-or-nothing); where-clauses
                          resolve against the pre-batch state, so they
                          do not see updates queued in the same batch
    .batch abort          discard the collected updates
    .batch status         how many updates are pending
    .serve <host> <port>  serve this database over TCP: the framed-JSON
                          multi-tenant protocol of docs/PROTOCOL.md
                          (port 0 picks a free port); Ctrl-C stops and
                          prints a summary
    .save <path>          persist the database
    .wal on <dir>         attach a write-ahead log rooted at <dir>
    .wal stats            durability counters (lsn, ops, log bytes, ...)
    .checkpoint           atomic snapshot + log prune (requires .wal on)
    .recover <dir>        replace the session database with the one
                          recovered from a WAL directory
    .quit                 leave the shell

Everything else on a line is handed to the command-language interpreter,
e.g. ``add_attribute register : str to Student`` or
``create Student [name = "Ada"]``.

Programmatic use (and the tests) drive :func:`run_shell` directly with a
list of input lines; ``main`` wires it to stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Iterable, List, Optional

from repro.errors import TseError
from repro.algebra import compiler as compilermod
from repro.core.database import TseDatabase
from repro.lang.interpreter import Interpreter
from repro.lang.parser import UpdateCmd, parse_command
from repro.persistence import load_database, save_database

HELP_TEXT = __doc__.split(".. code-block:: text")[1].split("Everything else")[0]


def _meta_command(
    db: TseDatabase, state: dict, line: str, emit: Callable[[str], None]
) -> bool:
    """Handle one ``.meta`` command; returns False on ``.quit``."""
    parts = line.split()
    command, args = parts[0], parts[1:]
    if command == ".help":
        emit(HELP_TEXT.strip("\n"))
    elif command == ".views":
        for name in db.view_names():
            current = db.views.current(name)
            marker = "*" if name == state["view"] else " "
            emit(f" {marker} {current.label}  ({len(current.selected)} classes)")
    elif command == ".use":
        if not args:
            emit("usage: .use <view>")
        else:
            db.views.current(args[0])  # raises on unknown
            state["view"] = args[0]
            emit(f"now using view {args[0]!r}")
    elif command == ".show":
        emit(db.view(state["view"]).describe())
    elif command == ".classes":
        view = db.view(state["view"])
        for cls in view.class_names():
            props = ", ".join(view[cls].property_names())
            emit(f"  {cls}({props})")
    elif command == ".extent":
        if not args:
            emit("usage: .extent <class>")
        else:
            view = db.view(state["view"])
            for handle in view[args[0]].extent():
                emit(f"  {handle.oid}: {handle.values()}")
    elif command == ".history":
        for record in db.evolution_log():
            emit(
                f"  {record.view_name} v{record.old_version}->v{record.new_version}: "
                f"{record.plan.provenance}"
            )
    elif command == ".stats":
        if args and args[0] == "reset":
            db.reset_stats()
            emit("stats reset")
        elif args:
            emit("usage: .stats [reset]")
        else:
            for key, value in db.stats().items():
                if isinstance(value, dict):
                    emit(f"  {key}:")
                    for sub_key, sub_value in value.items():
                        emit(f"    {sub_key}: {sub_value}")
                else:
                    emit(f"  {key}: {value}")
    elif command == ".metrics":
        if args and args[0] == "--prom":
            for line in db.obs.metrics.to_prometheus().rstrip("\n").split("\n"):
                emit(line)
        elif args:
            emit("usage: .metrics [--prom]")
        else:
            import json as _json

            emit(_json.dumps(db.stats(), indent=2, default=str))
    elif command == ".sessions":
        if args and args[0] == "on":
            db.sessions()
            emit("session layer attached (schema latch + epoch snapshots)")
        elif args:
            emit("usage: .sessions [on]")
        elif db._sessions is None:
            emit("no session layer attached (use .sessions on)")
        else:
            for key, value in db._sessions.stats_dict().items():
                emit(f"  {key}: {value}")
    elif command == ".trace":
        if not args:
            status = "on" if db.obs.tracer.enabled else "off"
            emit(f"tracing is {status} ({len(db.obs.tracer.traces())} trace(s) buffered)")
        elif args[0] == "on":
            db.obs.tracer.enable()
            emit("tracing enabled")
        elif args[0] == "off":
            db.obs.tracer.disable()
            emit("tracing disabled")
        elif args[0] == "show":
            try:
                limit = int(args[1]) if len(args) > 1 else 5
            except ValueError:
                emit("usage: .trace show [n]")
                return True
            traces = db.obs.tracer.traces(limit)
            if not traces:
                emit("no traces recorded (enable with .trace on)")
            for root in traces:
                for line in root.render_lines():
                    emit("  " + line)
        elif args[0] == "export":
            if len(args) != 2:
                emit("usage: .trace export <file>")
            else:
                from repro.obs.traceexport import export_chrome_trace

                trace = export_chrome_trace(db.obs.tracer, path=args[1])
                emit(
                    f"wrote {len(trace['traceEvents'])} trace event(s) to "
                    f"{args[1]} (load in Perfetto or chrome://tracing)"
                )
        else:
            emit("usage: .trace on|off|show [n]|export <file>")
    elif command == ".explain":
        statement = line[len(".explain"):].strip()
        if not statement:
            emit("usage: .explain <schema-change statement>")
        else:
            from repro.lang.parser import SchemaChangeCmd

            parsed = parse_command(statement)
            if not isinstance(parsed, SchemaChangeCmd):
                emit("error: .explain takes a schema-change statement "
                     "(e.g. add_attribute x : str to Student)")
            else:
                try:
                    operation, explain_args = _explain_args(parsed)
                except TseError as exc:
                    emit(f"error: {exc}")
                    return True
                report = db.explain(state["view"], operation, **explain_args)
                for out_line in report.render_lines():
                    emit(out_line)
    elif command == ".top":
        if args and args[0] == "watch":
            try:
                interval = float(args[1]) if len(args) > 1 else 2.0
            except ValueError:
                emit("usage: .top watch [seconds]")
                return True
            import time as _time

            try:
                while True:
                    emit("\x1b[2J\x1b[H", )
                    for out_line in _render_top(db):
                        emit(out_line)
                    _time.sleep(interval)
            except KeyboardInterrupt:
                emit("")
        elif args:
            emit("usage: .top [watch [seconds]]")
        else:
            for out_line in _render_top(db):
                emit(out_line)
    elif command == ".flight":
        flight = db.obs.flight
        action = args[0] if args else "show"
        if action == "show":
            try:
                limit = int(args[1]) if len(args) > 1 else 10
            except ValueError:
                emit("usage: .flight show [n]")
                return True
            records = flight.tail(limit)
            if not records:
                emit("flight recorder is empty")
            for record in records:
                detail = " ".join(
                    f"{k}={v}" for k, v in record.items()
                    if k not in ("seq", "t", "kind")
                )
                emit(f"  #{record['seq']} {record['kind']} {detail}".rstrip())
        elif action == "dump":
            reason = args[1] if len(args) > 1 else "manual"
            path = flight.dump_dossier(reason, directory=flight.dossier_dir or ".")
            emit(f"dossier written to {path}")
        elif action == "dir":
            if len(args) != 2:
                emit("usage: .flight dir <path>")
            else:
                from pathlib import Path as _Path

                flight.dossier_dir = _Path(args[1])
                emit(
                    f"dossier directory set to {args[1]} (automatic dumps on "
                    "failure/recovery/divergence)"
                )
        elif action == "log":
            if len(args) != 2:
                emit("usage: .flight log <file>")
            else:
                flight.enable_file(args[1])
                emit(f"flight records mirrored to {args[1]}")
        else:
            emit("usage: .flight show [n]|dump [why]|dir <path>|log <file>")
    elif command == ".serve":
        try:
            port = int(args[1]) if len(args) == 2 else None
        except ValueError:
            port = None
        if len(args) != 2 or port is None:
            emit("usage: .serve <host> <port>")
        else:
            stats = db.serve(args[0], port)
            emit(
                f"server stopped: {stats['requests_served']} request(s) "
                f"served, {stats['connections_accepted']} connection(s), "
                f"{stats['connections_shed']} shed"
            )
    elif command == ".save":
        if not args:
            emit("usage: .save <path>")
        else:
            save_database(db, args[0])
            emit(f"saved to {args[0]}")
    elif command == ".wal":
        if args and args[0] == "on":
            if len(args) != 2:
                emit("usage: .wal on <dir>")
            else:
                db.enable_wal(args[1])
                emit(f"write-ahead log attached at {args[1]} (initial checkpoint taken)")
        elif args and args[0] == "stats":
            if db.wal is None:
                emit("no write-ahead log attached (use .wal on <dir>)")
            else:
                for key, value in db.wal.stats_dict().items():
                    emit(f"  {key}: {value}")
        else:
            emit("usage: .wal on <dir> | .wal stats")
    elif command == ".checkpoint":
        path = db.checkpoint()  # raises StorageError when no WAL is attached
        emit(
            f"checkpoint written to {path} "
            f"({db.wal.last_checkpoint_seconds * 1000:.1f} ms)"
        )
    elif command == ".recover":
        if not args:
            emit("usage: .recover <dir>")
        else:
            recovered = TseDatabase.recover(args[0])
            state["db"] = recovered
            views = recovered.view_names()
            if state["view"] not in views and views:
                state["view"] = views[0]
            wal = recovered.wal
            emit(
                f"recovered from {args[0]}: {wal.records_replayed} record(s) "
                f"replayed, lsn {wal.lsn}, ops_committed {wal.ops_committed} "
                f"({wal.last_recovery_seconds * 1000:.1f} ms); "
                f"now using view {state['view']!r}"
            )
    elif command == ".compile":
        if not args:
            status = "on" if compilermod.compilation_enabled() else "off"
            stats = compilermod.compiler_stats()
            emit(f"predicate compilation is {status}")
            for key, value in stats.items():
                emit(f"  {key}: {value}")
        elif args[0] in ("on", "off"):
            compilermod.set_compilation(args[0] == "on")
            emit(f"predicate compilation {args[0]}")
        else:
            emit("usage: .compile [on|off]")
    elif command == ".batch":
        action = args[0] if args else "status"
        if action == "begin":
            if state.get("batch") is not None:
                emit("already in a batch (commit or abort it first)")
            else:
                state["batch"] = []
                emit("batch started; update statements are now collected")
        elif action == "commit":
            pending = state.get("batch")
            if pending is None:
                emit("no batch in progress (use .batch begin)")
            else:
                state["batch"] = None
                specs = _batch_specs(db, state["view"], pending)
                results = db.apply_many(specs)
                state["executed"] += len(results)
                emit(f"batch committed: {len(results)} update(s) applied atomically")
        elif action == "abort":
            pending = state.get("batch")
            state["batch"] = None
            count = 0 if pending is None else len(pending)
            emit(f"batch aborted ({count} pending update(s) discarded)")
        elif action == "status":
            pending = state.get("batch")
            if pending is None:
                emit("no batch in progress")
            else:
                emit(f"batch in progress: {len(pending)} update(s) pending")
        else:
            emit("usage: .batch begin|commit|abort|status")
    elif command == ".quit":
        return False
    else:
        emit(f"unknown meta-command {command!r} (try .help)")
    return True


def _explain_args(cmd) -> tuple:
    """Map a parsed ``SchemaChangeCmd`` onto ``TseDatabase.explain`` kwargs,
    mirroring the interpreter's dispatch of the same statement."""
    op = cmd.op
    if op == "add_attribute":
        name, target = cmd.args
        return op, {"name": name, "to": target, "domain": cmd.domain or "any"}
    if op == "delete_attribute":
        name, target = cmd.args
        return op, {"name": name, "from_": target}
    if op == "add_method":
        name, target = cmd.args
        return op, {"name": name, "to": target, "body": None}
    if op == "delete_method":
        name, target = cmd.args
        return op, {"name": name, "from_": target}
    if op == "add_edge":
        sup, sub = cmd.args
        return op, {"sup": sup, "sub": sub}
    if op == "delete_edge":
        sup, sub = cmd.args
        return op, {"sup": sup, "sub": sub, "connected_to": cmd.connected_to}
    if op == "add_class":
        return op, {"name": cmd.args[0], "connected_to": cmd.connected_to}
    if op == "delete_class":
        return op, {"name": cmd.args[0]}
    raise TseError(
        f"{op} is a composite operation; .explain covers the eight primitives"
    )


def _histogram_children(entry) -> List[tuple]:
    """A histogram-family snapshot as ``[(label, as_dict), ...]`` whether the
    family is a bare unlabelled histogram or a labelled dict of them."""
    if isinstance(entry, dict) and "count" in entry:
        return [("", entry)]
    if isinstance(entry, dict):
        return sorted(entry.items())
    return []


def _render_top(db: TseDatabase) -> List[str]:
    """One screen of operational stats (the ``.top`` meta-command)."""
    snap = db.stats()
    flight = db.obs.flight.stats_dict()
    lines = ["== ops =="]
    lines.append(
        f"  schema changes: {snap.get('schema_changes_applied', 0)} applied, "
        f"{snap.get('schema_changes_failed', 0)} failed; "
        f"spans recorded: {db.obs.tracer.spans_recorded}"
    )
    latency = _histogram_children(snap.get("schema_change_seconds", {}))
    if latency:
        lines.append("== schema-change latency (by op) ==")
        for label, hist in latency:
            lines.append(
                f"  {label or '(all)'}: n={hist['count']} "
                f"p50={hist['p50'] * 1000:.3f}ms p95={hist['p95'] * 1000:.3f}ms "
                f"p99={hist['p99'] * 1000:.3f}ms"
            )
    spans = _histogram_children(snap.get("span_duration_seconds", {}))
    if spans:
        lines.append("== hottest spans ==")
        hottest = sorted(spans, key=lambda kv: -kv[1]["count"])[:5]
        for label, hist in hottest:
            lines.append(
                f"  {label}: n={hist['count']} p95={hist['p95'] * 1000:.3f}ms"
            )
    concurrency = snap.get("concurrency")
    if isinstance(concurrency, dict):
        lines.append("== sessions ==")
        lines.append(
            f"  readers={concurrency.get('readers_opened', 0)} "
            f"writers={concurrency.get('writers_opened', 0)}"
        )
        reads = snap.get("session_reads")
        if isinstance(reads, dict):
            busiest = sorted(reads.items(), key=lambda kv: -kv[1])[:5]
            for label, count in busiest:
                lines.append(f"  reads{label}: {count}")
    wal_kinds = snap.get("wal_appends_by_kind")
    if isinstance(wal_kinds, dict):
        lines.append("== wal appends (by record kind) ==")
        for label, count in sorted(wal_kinds.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {label}: {count}")
    lines.append("== flight recorder ==")
    lines.append(
        f"  records={flight['records']} slow_ops={flight['slow_ops']} "
        f"dossiers={flight['dossiers']} buffered={flight['buffered']}"
    )
    return lines


def _batch_specs(
    db: TseDatabase, view_name: str, commands: List[UpdateCmd]
) -> List[tuple]:
    """Translate collected update statements into ``apply_many`` specs.

    Set-expressions (extents and ``select`` predicates) are resolved here,
    at commit time, against the current state — the batch reads one
    snapshot and then writes atomically, deferred-update style.  Alias
    translation mirrors the interpreter's per-statement paths.
    """
    view = db.view(view_name)
    schema = view.schema

    def targets_of(cls_handle, predicate):
        handles = (
            cls_handle.extent()
            if predicate is None
            else cls_handle.select_where(predicate)
        )
        return [h.oid for h in handles]

    specs: List[tuple] = []
    for cmd in commands:
        if cmd.op == "create":
            cls = view[cmd.target]
            specs.append((
                "create",
                {
                    "class_name": cls.global_name,
                    "assignments": {
                        schema.visible_property(cmd.target, name): value
                        for name, value in cmd.assigns
                    },
                },
            ))
        elif cmd.op == "set":
            cls = view[cmd.target]
            specs.append((
                "set",
                {
                    "oids": targets_of(cls, cmd.predicate),
                    "class_name": cls.global_name,
                    "assignments": {
                        schema.visible_property(cmd.target, name): value
                        for name, value in cmd.assigns
                    },
                },
            ))
        elif cmd.op == "delete":
            specs.append(
                ("delete", {"oids": targets_of(view[cmd.target], cmd.predicate)})
            )
        elif cmd.op == "add":
            source_cls = view[cmd.source]
            specs.append((
                "add",
                {
                    "oids": targets_of(source_cls, cmd.predicate),
                    "class_name": view[cmd.target].global_name,
                },
            ))
        elif cmd.op == "remove":
            cls = view[cmd.target]
            specs.append((
                "remove",
                {
                    "oids": targets_of(cls, cmd.predicate),
                    "class_name": cls.global_name,
                },
            ))
        else:  # pragma: no cover - parser only yields the five ops
            raise TseError(f"unknown batch update {cmd.op!r}")
    return specs


def run_shell(
    db: TseDatabase,
    view_name: str,
    lines: Iterable[str],
    emit: Callable[[str], None] = print,
) -> dict:
    """Execute shell input against ``db`` in the context of ``view_name``.

    Returns the final session state (current view name, commands executed,
    errors encountered) so tests can assert on it.
    """
    # ``db`` lives in the state dict so ``.recover`` can swap the session
    # over to the recovered database mid-stream
    state = {"view": view_name, "executed": 0, "errors": 0, "db": db}
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("."):
            try:
                if not _meta_command(state["db"], state, line, emit):
                    break
            except TseError as exc:
                state["errors"] += 1
                emit(f"error: {exc}")
            continue
        if state.get("batch") is not None:
            # inside .batch begin/.batch commit: collect updates, run nothing
            try:
                parsed = parse_command(line)
                if not isinstance(parsed, UpdateCmd):
                    raise TseError(
                        "only generic updates (create/set/delete/add/remove) "
                        "can be batched"
                    )
            except TseError as exc:
                state["errors"] += 1
                emit(f"error: {exc}")
                continue
            state["batch"].append(parsed)
            emit(f"queued ({len(state['batch'])} pending)")
            continue
        try:
            result = Interpreter(state["db"], state["view"]).execute(line)
        except TseError as exc:
            state["errors"] += 1
            emit(f"error: {exc}")
            continue
        state["executed"] += 1
        if result.kind == "create":
            emit(f"created {result.objects[0].oid}")
        elif result.kind in ("set", "delete", "add", "remove"):
            emit(f"{result.kind}: {result.count} object(s)")
        elif result.kind == "schema_change":
            emit(f"schema change applied; {result.detail}")
        elif result.kind == "defineview":
            emit(f"created view {result.detail} (use .use {result.detail})")
        elif result.kind == "definevc":
            emit(f"defined virtual class {result.detail}")
        elif result.kind == "merge":
            emit(f"merged into view {result.detail}")
    return state


def _bootstrap_database(path: Optional[str]) -> TseDatabase:
    if path:
        return load_database(path)
    # an empty playground database with one view, so the shell is usable
    from repro.schema.properties import Attribute

    db = TseDatabase()
    db.define_class("Object_", [Attribute("label", domain="str")])
    db.create_view("main", ["Object_"], closure="ignore")
    return db


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tse-shell",
        description="interactive console over a TSE database "
        "(transparent schema evolution)",
    )
    parser.add_argument("database", nargs="?", help="database JSON to load")
    parser.add_argument(
        "--view", default=None, help="view to start in (default: first view)"
    )
    parser.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="durability directory: recover from it when it holds a "
        "checkpoint/log, otherwise attach a fresh write-ahead log",
    )
    args = parser.parse_args(argv)
    if args.wal:
        from pathlib import Path

        from repro.storage.wal import CHECKPOINT_NAME, LOG_NAME

        wal_dir = Path(args.wal)
        log_path = wal_dir / LOG_NAME
        populated = (wal_dir / CHECKPOINT_NAME).exists() or (
            log_path.exists() and log_path.stat().st_size > 0
        )
        if populated:
            db = TseDatabase.recover(wal_dir)
            print(
                f"recovered from {wal_dir}: "
                f"{db.wal.records_replayed} record(s) replayed"
            )
        else:
            db = _bootstrap_database(args.database)
            db.enable_wal(wal_dir)
    else:
        db = _bootstrap_database(args.database)
    views = db.view_names()
    if not views:
        print("database has no views; create one programmatically first")
        return 1
    view_name = args.view or views[0]
    print(f"TSE shell — view {view_name!r}; .help for commands, .quit to exit")

    def stdin_lines():
        while True:
            try:
                yield input(f"{view_name}> ")
            except EOFError:
                return

    run_shell(db, view_name, stdin_lines())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
