"""The View Manager (section 5): create, evolve and look up view schemas.

Coordinates the generator, the closure check and the history.  The TSE
Manager calls :meth:`ViewManager.register_successor` at the end of every
schema-change pipeline (arrow 3 of figure 6).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import ViewError
from repro.obs.tracing import Tracer
from repro.schema.graph import GlobalSchema
from repro.views.generation import ViewSchemaGenerator
from repro.views.history import ViewSchemaHistory
from repro.views.schema import ViewSchema


class ViewManager:
    """Facade over view generation and the view schema history."""

    def __init__(self, schema: GlobalSchema, tracer: Optional[Tracer] = None) -> None:
        self.schema = schema
        self.generator = ViewSchemaGenerator(schema, tracer=tracer)
        self.history = ViewSchemaHistory()

    def create_view(
        self,
        name: str,
        selected: Iterable[str],
        renames: Optional[Mapping[str, str]] = None,
        property_renames: Optional[Mapping[str, Mapping[str, str]]] = None,
        closure: str = "complete",
        provenance: str = "initial",
    ) -> ViewSchema:
        """Create and register version 1 of a new view."""
        view = self.generator.generate(
            name=name,
            version=1,
            selected=selected,
            renames=renames,
            property_renames=property_renames,
            provenance=provenance,
            closure=closure,
        )
        self.history.register_initial(view)
        return view

    def register_successor(
        self,
        name: str,
        selected: Iterable[str],
        renames: Optional[Mapping[str, str]] = None,
        property_renames: Optional[Mapping[str, Mapping[str, str]]] = None,
        closure: str = "complete",
        provenance: str = "",
    ) -> ViewSchema:
        """Generate the next version of a view and substitute it."""
        current = self.history.current(name)
        view = self.generator.generate(
            name=name,
            version=current.version + 1,
            selected=selected,
            renames=renames,
            property_renames=property_renames,
            provenance=provenance,
            closure=closure,
        )
        self.history.substitute(view)
        return view

    def current(self, name: str) -> ViewSchema:
        return self.history.current(name)

    def remove_class_from_view(
        self, name: str, view_class: str, provenance: str = "removeFromView"
    ) -> ViewSchema:
        """MultiView's ``removeFromView`` command — the paper's delete-class
        semantics (section 6.8): the class is dropped from the view schema;
        nothing else changes anywhere."""
        current = self.history.current(name)
        global_name = current.global_name_of(view_class)
        selected, renames = current.successor_parts()
        selected.discard(global_name)
        renames.pop(global_name, None)
        if not selected:
            raise ViewError(f"removing {view_class!r} would empty view {name!r}")
        property_renames = {
            cls: dict(per_cls)
            for cls, per_cls in current.property_renames.items()
            if cls != view_class
        }
        return self.register_successor(
            name,
            selected,
            renames,
            property_renames,
            closure="ignore",
            provenance=provenance,
        )
