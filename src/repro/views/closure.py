"""Type-closure checking for view schemas.

A view schema is *type-closed* when every class reachable through the
object-valued attributes of its classes is itself part of the view.  The
paper's View Manager "can check the type-closure of a view schema and
incorporate necessary classes for the type-closure" (section 5); this module
implements both the check and the completion.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.schema.graph import GlobalSchema
from repro.schema.properties import PRIMITIVE_DOMAINS, Attribute
from repro.schema.types import Ambiguity


def referenced_classes(schema: GlobalSchema, class_name: str) -> Set[str]:
    """Classes referenced by the object-valued attributes of one class."""
    referenced: Set[str] = set()
    for entry in schema.type_of(class_name).values():
        candidates = entry.candidates if isinstance(entry, Ambiguity) else (entry,)
        for resolved in candidates:
            prop = resolved.prop
            if isinstance(prop, Attribute) and prop.domain not in PRIMITIVE_DOMAINS:
                if prop.domain in schema:
                    referenced.add(prop.domain)
    return referenced


def missing_for_closure(schema: GlobalSchema, selected: Iterable[str]) -> Set[str]:
    """Classes that must be added to make the selection type-closed.

    The closure is transitive: a class pulled in for closure may itself
    reference further classes.
    """
    chosen = set(selected)
    missing: Set[str] = set()
    frontier = list(chosen)
    while frontier:
        current = frontier.pop()
        for ref in referenced_classes(schema, current):
            if ref not in chosen and ref not in missing:
                missing.add(ref)
                frontier.append(ref)
    return missing


def is_type_closed(schema: GlobalSchema, selected: Iterable[str]) -> bool:
    return not missing_for_closure(schema, selected)
