"""View system: view schemas, generation, closure, history, manager."""

from repro.views.closure import is_type_closed, missing_for_closure, referenced_classes
from repro.views.generation import ViewSchemaGenerator
from repro.views.history import ViewSchemaHistory
from repro.views.manager import ViewManager
from repro.views.schema import ViewSchema

__all__ = [
    "is_type_closed",
    "missing_for_closure",
    "referenced_classes",
    "ViewSchemaGenerator",
    "ViewSchemaHistory",
    "ViewManager",
    "ViewSchema",
]
