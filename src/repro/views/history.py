"""The View Schema History (section 5).

"The dictionary keeps track of the history of each view schema, allowing for
the substitution of the old view by the newly created one."  Substitution is
what makes evolution *transparent*: user-level handles resolve the current
version through the history on every access, so replacing the version is
invisible to the running application.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.errors import (
    RetiredViewVersion,
    StaleViewVersion,
    UnknownView,
    ViewError,
)
from repro.views.schema import ViewSchema


class ViewSchemaHistory:
    """Versioned registry of every view schema in the database."""

    def __init__(self) -> None:
        self._versions: Dict[str, List[ViewSchema]] = {}
        # versions the operators declared fully vacated — reads stay legal,
        # writes through a retired pin raise RetiredViewVersion
        self._retired: Dict[str, Set[int]] = {}

    # -- registration ----------------------------------------------------------

    def register_initial(self, view: ViewSchema) -> None:
        """Register version 1 of a brand-new view."""
        if view.name in self._versions:
            raise ViewError(f"view {view.name!r} already exists")
        if view.version != 1:
            raise ViewError(
                f"initial registration must be version 1, got {view.version}"
            )
        self._versions[view.name] = [view]

    def substitute(self, view: ViewSchema) -> None:
        """Register a successor version, replacing the current one.

        Old versions remain in the history — the paper keeps them "as long
        as other application programs continue to operate" on them; we keep
        them forever and let callers pin a version explicitly if needed.
        """
        chain = self._chain(view.name)
        expected = chain[-1].version + 1
        if view.version != expected:
            raise ViewError(
                f"view {view.name!r}: expected successor version {expected}, "
                f"got {view.version}"
            )
        chain.append(view)

    # -- lookup ----------------------------------------------------------------

    def _chain(self, name: str) -> List[ViewSchema]:
        try:
            return self._versions[name]
        except KeyError:
            raise UnknownView(f"no view named {name!r}") from None

    def current(self, name: str) -> ViewSchema:
        """The latest version of a view — what user handles resolve to."""
        return self._chain(name)[-1]

    def version(self, name: str, version: int) -> ViewSchema:
        """A specific historical version (1-based)."""
        chain = self._chain(name)
        for view in chain:
            if view.version == version:
                return view
        raise StaleViewVersion(
            f"view {name!r} has no version {version} "
            f"(history holds 1..{chain[-1].version})"
        )

    def versions_of(self, name: str) -> List[ViewSchema]:
        return list(self._chain(name))

    def view_names(self) -> List[str]:
        return sorted(self._versions)

    # -- lifecycle introspection -------------------------------------------------

    def versions(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """Version-lifecycle inventory: one row per registered version.

        Each row carries ``view``/``version``/``current``/``retired`` so a
        fleet simulator (or an operator) can observe lifecycles instead of
        probing for exceptions.  With ``name`` the inventory is restricted
        to that view's chain.
        """
        names = [name] if name is not None else self.view_names()
        rows: List[Dict[str, object]] = []
        for view_name in names:
            chain = self._chain(view_name)
            current = chain[-1].version
            for view in chain:
                rows.append(
                    {
                        "view": view_name,
                        "version": view.version,
                        "current": view.version == current,
                        "retired": self.is_retired(view_name, view.version),
                    }
                )
        return rows

    def live_pins(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """The subset of :meth:`versions` still legal to pin for writes —
        everything registered and not retired."""
        return [row for row in self.versions(name) if not row["retired"]]

    def retire(self, name: str, version: int) -> None:
        """Mark a *historical* version as retired.

        The current version can never retire (it is what unpinned handles
        resolve to), an unknown version raises :class:`StaleViewVersion`
        via the ordinary lookup, and retiring twice is refused so operator
        scripts notice double-decommissions.
        """
        view = self.version(name, version)  # raises for unknown name/version
        if view.version == self._chain(name)[-1].version:
            raise ViewError(
                f"view {name!r} version {version} is the current version "
                "and cannot retire; substitute a successor first"
            )
        retired = self._retired.setdefault(name, set())
        if version in retired:
            raise RetiredViewVersion(
                f"view {name!r} version {version} is already retired"
            )
        retired.add(version)

    def is_retired(self, name: str, version: int) -> bool:
        return version in self._retired.get(name, set())

    def check_writable(self, name: str, version: Optional[int]) -> None:
        """Raise :class:`RetiredViewVersion` when a pinned write targets a
        retired version (``None`` — an unpinned handle — is always legal)."""
        if version is not None and self.is_retired(name, version):
            raise RetiredViewVersion(
                f"view {name!r} version {version} is retired; "
                "writes must go through a live version"
            )

    def retired_map(self) -> Dict[str, List[int]]:
        """JSON-shaped retirement state (for persistence and checkpoints)."""
        return {
            name: sorted(versions)
            for name, versions in self._retired.items()
            if versions
        }

    def restore_retired(self, retired: Dict[str, List[int]]) -> None:
        """Replace the retirement state wholesale (checkpoint restore)."""
        self._retired = {
            name: set(versions) for name, versions in retired.items() if versions
        }

    def __contains__(self, name: str) -> bool:
        return name in self._versions

    def __iter__(self) -> Iterator[ViewSchema]:
        for name in self.view_names():
            yield self.current(name)

    def total_versions(self) -> int:
        return sum(len(chain) for chain in self._versions.values())
