"""The View Schema History (section 5).

"The dictionary keeps track of the history of each view schema, allowing for
the substitution of the old view by the newly created one."  Substitution is
what makes evolution *transparent*: user-level handles resolve the current
version through the history on every access, so replacing the version is
invisible to the running application.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import StaleViewVersion, UnknownView, ViewError
from repro.views.schema import ViewSchema


class ViewSchemaHistory:
    """Versioned registry of every view schema in the database."""

    def __init__(self) -> None:
        self._versions: Dict[str, List[ViewSchema]] = {}

    # -- registration ----------------------------------------------------------

    def register_initial(self, view: ViewSchema) -> None:
        """Register version 1 of a brand-new view."""
        if view.name in self._versions:
            raise ViewError(f"view {view.name!r} already exists")
        if view.version != 1:
            raise ViewError(
                f"initial registration must be version 1, got {view.version}"
            )
        self._versions[view.name] = [view]

    def substitute(self, view: ViewSchema) -> None:
        """Register a successor version, replacing the current one.

        Old versions remain in the history — the paper keeps them "as long
        as other application programs continue to operate" on them; we keep
        them forever and let callers pin a version explicitly if needed.
        """
        chain = self._chain(view.name)
        expected = chain[-1].version + 1
        if view.version != expected:
            raise ViewError(
                f"view {view.name!r}: expected successor version {expected}, "
                f"got {view.version}"
            )
        chain.append(view)

    # -- lookup ----------------------------------------------------------------

    def _chain(self, name: str) -> List[ViewSchema]:
        try:
            return self._versions[name]
        except KeyError:
            raise UnknownView(f"no view named {name!r}") from None

    def current(self, name: str) -> ViewSchema:
        """The latest version of a view — what user handles resolve to."""
        return self._chain(name)[-1]

    def version(self, name: str, version: int) -> ViewSchema:
        """A specific historical version (1-based)."""
        chain = self._chain(name)
        for view in chain:
            if view.version == version:
                return view
        raise StaleViewVersion(
            f"view {name!r} has no version {version} "
            f"(history holds 1..{chain[-1].version})"
        )

    def versions_of(self, name: str) -> List[ViewSchema]:
        return list(self._chain(name))

    def view_names(self) -> List[str]:
        return sorted(self._versions)

    def __contains__(self, name: str) -> bool:
        return name in self._versions

    def __iter__(self) -> Iterator[ViewSchema]:
        for name in self.view_names():
            yield self.current(name)

    def total_versions(self) -> int:
        return sum(len(chain) for chain in self._versions.values())
