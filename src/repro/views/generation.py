"""The view schema generation algorithm ([21], section 3.1 subtask 3).

Given a set of selected classes, generate the view's generalization
hierarchy automatically: the edges are the transitive reduction of the
global subsumption relation restricted to the selection.  Automatic
generation "relieves the user of constructing the is-a hierarchy for each
view schema and removes the potential inconsistencies ... due to the
mistakes of the user".
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import TypeClosureError, UnknownClass
from repro.obs.tracing import Tracer
from repro.schema.graph import GlobalSchema
from repro.views.closure import missing_for_closure
from repro.views.schema import ViewSchema


class ViewSchemaGenerator:
    """Builds :class:`ViewSchema` versions from class selections."""

    def __init__(self, schema: GlobalSchema, tracer: Optional[Tracer] = None) -> None:
        self.schema = schema
        self.tracer = tracer if tracer is not None else Tracer()

    def generate(
        self,
        name: str,
        version: int,
        selected: Iterable[str],
        renames: Optional[Mapping[str, str]] = None,
        property_renames: Optional[Mapping[str, Mapping[str, str]]] = None,
        provenance: str = "",
        closure: str = "check",
    ) -> ViewSchema:
        """Generate one view schema version.

        ``closure`` controls type-closure handling (section 5's View
        Manager "can check the type-closure of a view schema and
        incorporate necessary classes"):

        * ``"check"`` — raise :class:`TypeClosureError` when object-valued
          attributes reference classes outside the selection;
        * ``"complete"`` — silently add the missing classes;
        * ``"ignore"`` — generate as-is.
        """
        with self.tracer.span(
            "view_generate", view=name, version=version, closure=closure
        ) as span:
            chosen = set(selected)
            for cls in chosen:
                if cls not in self.schema:
                    raise UnknownClass(f"view selects unknown class {cls!r}")
            if closure not in ("check", "complete", "ignore"):
                raise ValueError(f"unknown closure mode {closure!r}")
            if closure != "ignore":
                missing = missing_for_closure(self.schema, chosen)
                if missing and closure == "check":
                    raise TypeClosureError(
                        f"view {name!r} is not type-closed; missing {sorted(missing)}"
                    )
                chosen |= missing
            edges = tuple(self.schema.transitive_reduction_over(chosen))
            span.set(classes=len(chosen), edges=len(edges))
            return ViewSchema(
                name=name,
                version=version,
                selected=frozenset(chosen),
                renames=dict(renames or {}),
                edges=edges,
                property_renames={
                    cls: dict(per_cls)
                    for cls, per_cls in (property_renames or {}).items()
                },
                provenance=provenance,
            )
