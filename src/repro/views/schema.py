"""View schemas: a selected, renamed slice of the global schema.

A view schema (paper glossary) "contains a subset of both base and virtual
classes as required by a particular user" — plus its own generalization
hierarchy, generated automatically, and per-view renames.  Renames are the
mechanism behind transparency: after an ``add_attribute`` the new view
contains the primed class ``Student'`` *renamed to* ``Student``, so the user
never learns the change was virtual (section 6.1.3).

View schema versions are immutable once registered; evolution always creates
a successor version (that is the whole point of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import UnknownClass, ViewError


@dataclass(frozen=True)
class ViewSchema:
    """One immutable version of one user's view.

    ``selected`` holds *global* class names; ``renames`` maps global name to
    the name shown inside the view (identity when absent).  ``edges`` is the
    generated is-a hierarchy over the selected classes, in global names.
    ``property_renames`` supports the paper's disambiguation-by-renaming:
    per view-class, a map of view-visible property name to the underlying
    property name.
    """

    name: str
    version: int
    selected: FrozenSet[str]
    renames: Mapping[str, str] = field(default_factory=dict)
    edges: Tuple[Tuple[str, str], ...] = ()
    property_renames: Mapping[str, Mapping[str, str]] = field(default_factory=dict)
    #: free-form provenance: which schema change produced this version
    provenance: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "selected", frozenset(self.selected))
        unknown = set(self.renames) - set(self.selected)
        if unknown:
            raise ViewError(
                f"renames refer to classes outside the view: {sorted(unknown)}"
            )
        view_names = [self.renames.get(g, g) for g in self.selected]
        dupes = {n for n in view_names if view_names.count(n) > 1}
        if dupes:
            raise ViewError(f"duplicate view class names: {sorted(dupes)}")

    # -- name translation ----------------------------------------------------

    def view_name_of(self, global_name: str) -> str:
        """The name a global class is shown under inside this view."""
        if global_name not in self.selected:
            raise UnknownClass(
                f"class {global_name!r} is not part of view {self.label}"
            )
        return self.renames.get(global_name, global_name)

    def global_name_of(self, view_name: str) -> str:
        """The global class behind a view-visible class name."""
        for global_name in self.selected:
            if self.renames.get(global_name, global_name) == view_name:
                return global_name
        raise UnknownClass(f"view {self.label} has no class {view_name!r}")

    def has_class(self, view_name: str) -> bool:
        try:
            self.global_name_of(view_name)
        except UnknownClass:
            return False
        return True

    # -- structure ----------------------------------------------------------------

    @property
    def label(self) -> str:
        return f"{self.name}.v{self.version}"

    def class_names(self) -> List[str]:
        """View-visible class names, sorted."""
        return sorted(self.renames.get(g, g) for g in self.selected)

    def view_edges(self) -> List[Tuple[str, str]]:
        """The generated is-a edges in view-visible names."""
        return sorted(
            (self.renames.get(sup, sup), self.renames.get(sub, sub))
            for sup, sub in self.edges
        )

    def direct_subs_of(self, view_name: str) -> List[str]:
        global_name = self.global_name_of(view_name)
        return sorted(
            self.renames.get(sub, sub)
            for sup, sub in self.edges
            if sup == global_name
        )

    def direct_supers_of(self, view_name: str) -> List[str]:
        global_name = self.global_name_of(view_name)
        return sorted(
            self.renames.get(sup, sup)
            for sup, sub in self.edges
            if sub == global_name
        )

    def roots(self) -> List[str]:
        """View classes with no superclass inside the view."""
        subs = {sub for _, sub in self.edges}
        return sorted(
            self.renames.get(g, g) for g in self.selected if g not in subs
        )

    # -- property renames --------------------------------------------------------

    def visible_property(self, view_class: str, view_prop: str) -> str:
        """Translate a view-visible property name to the underlying name."""
        per_class = self.property_renames.get(view_class, {})
        return per_class.get(view_prop, view_prop)

    def property_alias(self, view_class: str, underlying: str) -> str:
        """Inverse of :meth:`visible_property` (identity when unaliased)."""
        per_class = self.property_renames.get(view_class, {})
        for alias, original in per_class.items():
            if original == underlying:
                return alias
        return underlying

    # -- evolution helpers ----------------------------------------------------------

    def successor_parts(self) -> Tuple[set, dict]:
        """Mutable copies of selection and renames for building a successor."""
        return set(self.selected), dict(self.renames)

    def describe(self) -> str:
        """A stable, human-readable rendering (used by tests and examples)."""
        lines = [f"view {self.label}"]
        for cls in self.class_names():
            supers = self.direct_supers_of(cls)
            arrow = f" isa {', '.join(supers)}" if supers else ""
            lines.append(f"  {cls}{arrow}")
        return "\n".join(lines)
