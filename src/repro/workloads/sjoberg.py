"""The evolution-frequency workload of the paper's introduction.

Two field studies motivate TSE (section 1):

* Sjøberg [26] watched a health management system for 18 months: the number
  of relations grew by **139%**, the number of attributes by **274%**, and
  *every* relation was changed at least once.
* Marche [12] observed seven typical database applications and found about
  **59%** of attributes changed on average.

This module turns those numbers into a deterministic month-by-month trace of
primitive schema changes that a TSE view absorbs.  The accompanying bench
(``bench_intro_evolution_rates``) replays the trace, checks the realised
growth rates against the studies' figures, and — the paper's actual point —
verifies that an application holding an *old* view keeps answering the same
queries throughout all 18 months of churn.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.database import TseDatabase
from repro.core.handles import ViewHandle
from repro.errors import TseError
from repro.schema.properties import Attribute

#: the study's observed growth over 18 months
RELATION_GROWTH = 1.39  # +139%
ATTRIBUTE_GROWTH = 2.74  # +274%
MONTHS = 18

#: Marche's churn figure: share of initial attributes changed over the study
ATTRIBUTE_CHURN = 0.59


@dataclass
class TraceStats:
    """Realised statistics of one trace replay."""

    months: int
    initial_classes: int
    final_classes: int
    initial_attributes: int
    final_attributes: int
    classes_changed: int
    attributes_churned: int
    changes_applied: int
    old_view_intact: bool

    @property
    def class_growth(self) -> float:
        return (self.final_classes - self.initial_classes) / self.initial_classes

    @property
    def attribute_growth(self) -> float:
        return (self.final_attributes - self.initial_attributes) / self.initial_attributes

    @property
    def churn_rate(self) -> float:
        return self.attributes_churned / self.initial_attributes


@dataclass
class SjobergTrace:
    """A deterministic 18-month evolution trace over a health-registry schema."""

    seed: int = 7
    initial_classes: int = 8
    initial_attrs_per_class: int = 4

    def build_database(self) -> Tuple[TseDatabase, ViewHandle, ViewHandle]:
        """The initial registry plus two views: the evolving one and the
        frozen "legacy application" view."""
        db = TseDatabase()
        rng = random.Random(self.seed)
        names = []
        for index in range(self.initial_classes):
            name = f"Registry{index}"
            attrs = tuple(
                Attribute(f"f{index}_{a}", domain="int")
                for a in range(self.initial_attrs_per_class)
            )
            parent = (names[rng.randrange(len(names))],) if names else ("ROOT",)
            db.define_class(name, attrs, inherits_from=parent)
            names.append(name)
        evolving = db.create_view("health_system", names, closure="ignore")
        legacy = db.create_view("legacy_app", names, closure="ignore")
        for index in range(30):
            target = names[rng.randrange(len(names))]
            db.engine.create(target, {})
        return db, evolving, legacy

    def monthly_plan(self) -> List[List[Tuple[str, ...]]]:
        """The change schedule: per month, a list of (op, args) tuples sized
        so the 18-month totals hit the studied growth rates."""
        rng = random.Random(self.seed + 1)
        initial_attr_total = self.initial_classes * self.initial_attrs_per_class
        classes_to_add = math.ceil(self.initial_classes * (RELATION_GROWTH))
        churn_deletes = math.ceil(initial_attr_total * ATTRIBUTE_CHURN)
        # churn deletes one name and re-adds one renamed — net zero on the
        # inventory — so the growth target is carried by additions alone
        attrs_to_add = math.ceil(initial_attr_total * ATTRIBUTE_GROWTH)

        events: List[Tuple[str, ...]] = []
        for index in range(classes_to_add):
            events.append(("add_class", f"Module{index}"))
        for index in range(attrs_to_add):
            events.append(("add_attribute", f"g{index}"))
        # churn: delete an original attribute, then re-add it renamed — the
        # modify-attribute pattern Marche's 59% figure counts
        for index in range(churn_deletes):
            class_index = index % self.initial_classes
            attr_index = (index // self.initial_classes) % self.initial_attrs_per_class
            events.append(("churn", f"Registry{class_index}", f"f{class_index}_{attr_index}"))
        rng.shuffle(events)

        per_month = math.ceil(len(events) / MONTHS)
        return [
            events[month * per_month : (month + 1) * per_month]
            for month in range(MONTHS)
        ]

    def replay(self) -> TraceStats:
        """Run the whole trace and report realised statistics."""
        db, evolving, legacy = self.build_database()
        rng = random.Random(self.seed + 2)
        legacy_baseline = self._query_legacy(db, legacy)
        initial_attr_total = self.initial_classes * self.initial_attrs_per_class

        changes = 0
        churned = 0
        changed_classes = set()
        for month_events in self.monthly_plan():
            for event in month_events:
                try:
                    if event[0] == "add_class":
                        anchor = rng.choice(evolving.class_names())
                        evolving.add_class(event[1], connected_to=anchor)
                        changed_classes.add(anchor)
                    elif event[0] == "add_attribute":
                        target = rng.choice(evolving.class_names())
                        evolving.add_attribute(event[1], to=target, domain="int")
                        changed_classes.add(target)
                    elif event[0] == "churn":
                        _, target, attr = event
                        if target not in evolving.class_names():
                            continue
                        evolving.delete_attribute(attr, from_=target)
                        evolving.add_attribute(attr + "_r", to=target, domain="int")
                        changed_classes.add(target)
                        churned += 1
                except TseError:
                    continue  # inapplicable event (e.g. attr became non-local)
                changes += 1

        final_classes = len(evolving.class_names())
        final_attrs = self._attribute_total(db, evolving)
        legacy_after = self._query_legacy(db, legacy)
        return TraceStats(
            months=MONTHS,
            initial_classes=self.initial_classes,
            final_classes=final_classes,
            initial_attributes=initial_attr_total,
            final_attributes=final_attrs,
            classes_changed=len(changed_classes),
            attributes_churned=churned,
            changes_applied=changes,
            old_view_intact=(legacy_after == legacy_baseline),
        )

    @staticmethod
    def _attribute_total(db: TseDatabase, view: ViewHandle) -> int:
        """Distinct attribute names visible across the view's classes.

        Name-distinct counting matches how the field study tallied its
        attribute inventory (an attribute replayed into a sibling class by
        the add-class algorithm is not a new attribute to the user)."""
        distinct = set()
        for view_class in view.class_names():
            global_name = view.schema.global_name_of(view_class)
            distinct.update(db.schema.type_of(global_name))
        return len(distinct)

    @staticmethod
    def _query_legacy(db: TseDatabase, legacy: ViewHandle) -> Dict[str, tuple]:
        """The legacy application's observable world: per class, its type
        names and extent size."""
        result = {}
        for view_class in legacy.class_names():
            cls = legacy[view_class]
            result[view_class] = (
                tuple(cls.property_names()),
                cls.count(),
            )
        return result
