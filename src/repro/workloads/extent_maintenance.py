"""A mixed read/write workload over select-heavy schemas.

The scenario the incremental extent engine exists for: many coexisting view
schemas hang select/union/difference classes off a shared object base, so
*every* extent read competes with a steady stream of attribute writes.  The
generation-wipe evaluator recomputes all consulted extents after each write;
the incremental engine applies a per-object delta (or nothing at all, when
the written attribute feeds no predicate) and keeps serving cached extents.

Used by ``benchmarks/bench_transparency_overhead.py`` (full config, emits
``BENCH_extents.json``) and by the tier-1 ``bench_smoke`` regression test
(tiny config).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.algebra.expressions import Compare
from repro.core.database import TseDatabase
from repro.schema.classes import Derivation
from repro.schema.extents import ExtentEvaluator
from repro.schema.properties import Attribute
from repro.storage.oid import Oid

#: extents the read side of the workload consults each round
WORKLOAD_CLASSES = (
    "Person",
    "Student",
    "Adults",
    "Honors",
    "StudentOrStaff",
    "NonStudentAdults",
)


def build_select_workload(n_objects: int) -> Tuple[TseDatabase, List[Oid]]:
    """A university-flavoured base schema with a cone of derived classes.

    ``Adults``/``Honors`` are selects on ``age``/``gpa``; the set-operator
    classes stack a second derivation layer on top so deltas have a DAG to
    propagate through.
    """
    from repro.workloads.university import build_core_schema

    db = TseDatabase()
    build_core_schema(db)
    db.schema.define_local_property("Student", Attribute("gpa", domain="int"))
    db.define_virtual_class(
        "Adults", Derivation("select", ("Person",), predicate=Compare("age", ">=", 21))
    )
    db.define_virtual_class(
        "Honors", Derivation("select", ("Student",), predicate=Compare("gpa", ">=", 35))
    )
    db.define_virtual_class(
        "StudentOrStaff", Derivation("union", ("Student", "Adults"))
    )
    db.define_virtual_class(
        "NonStudentAdults", Derivation("difference", ("Adults", "Student"))
    )
    creates = []
    for index in range(n_objects):
        if index % 2:
            assignments = {"age": 15 + index % 30, "gpa": index % 45}
            creates.append(
                ("create", {"class_name": "Student", "assignments": assignments})
            )
        else:
            creates.append((
                "create",
                {"class_name": "Person", "assignments": {"age": 15 + index % 30}},
            ))
    # populate through the batched update path: one latch + one journal unit
    oids: List[Oid] = list(db.apply_many(creates))
    return db, oids


def run_mixed_workload(
    db: TseDatabase,
    evaluator,
    oids: List[Oid],
    rounds: int,
    predicate_write_every: int = 10,
) -> int:
    """Interleave attribute writes with extent reads; returns ops executed.

    Most writes touch ``name``/``address`` (no predicate reads them); every
    ``predicate_write_every``-th round also writes ``age`` and ``gpa``,
    which feed the select cone.
    """
    ops = 0
    n = len(oids)
    for round_no in range(rounds):
        oid = oids[round_no % n]
        db.pool.set_value(oid, "Person", "name", f"n{round_no}")
        ops += 1
        if round_no % predicate_write_every == 0:
            db.pool.set_value(oid, "Person", "age", 15 + round_no % 30)
            db.pool.set_value(oid, "Student", "gpa", round_no % 45)
            ops += 2
        for class_name in WORKLOAD_CLASSES:
            evaluator.extent(class_name)
            ops += 1
    return ops


def measure_mixed_workload(
    n_objects: int, rounds: int
) -> Dict[str, Dict[str, object]]:
    """Run the workload once per evaluator kind and report ops/sec + stats.

    ``baseline`` is the seed generation-wipe :class:`ExtentEvaluator`;
    ``incremental`` is the database's live engine.  Both run against the
    same database (sequentially) so per-run state is comparable.
    """
    results: Dict[str, Dict[str, object]] = {}
    db, oids = build_select_workload(n_objects)

    baseline = ExtentEvaluator(db.schema, db.pool)
    db.evaluator.invalidate()  # keep the live engine cold during the baseline run
    start = time.perf_counter()
    ops = run_mixed_workload(db, baseline, oids, rounds)
    elapsed = time.perf_counter() - start
    results["baseline"] = {
        "ops": ops,
        "seconds": round(elapsed, 6),
        "ops_per_sec": round(ops / elapsed, 1) if elapsed else float("inf"),
        **baseline.stats.as_dict(),
    }

    incremental = db.evaluator
    incremental.invalidate()
    incremental.stats.reset()
    start = time.perf_counter()
    ops = run_mixed_workload(db, incremental, oids, rounds)
    elapsed = time.perf_counter() - start
    results["incremental"] = {
        "ops": ops,
        "seconds": round(elapsed, 6),
        "ops_per_sec": round(ops / elapsed, 1) if elapsed else float("inf"),
        **incremental.stats.as_dict(),
    }
    results["speedup"] = {
        "ops_per_sec_ratio": round(
            results["incremental"]["ops_per_sec"]
            / max(results["baseline"]["ops_per_sec"], 1e-9),
            2,
        )
    }
    return results
