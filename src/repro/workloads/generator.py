"""Randomized schema-evolution workloads.

Produces seeded-random databases, populations, and *valid* sequences of
primitive schema changes against a view — the raw material for the
updatability (Theorem 1) and transparency property tests and for the
chain-propagation benchmarks.  All randomness flows from an explicit seed so
every run is reproducible.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ChangeRejected, TseError
from repro.core.database import TseDatabase
from repro.core.handles import ViewHandle
from repro.schema.properties import Attribute


@dataclass
class AppliedChange:
    """One schema change the generator applied successfully."""

    operation: str
    detail: str


class WorkloadGenerator:
    """Seeded generator of databases and evolution traces."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._name_counter = 0

    # -- naming -----------------------------------------------------------------

    def fresh_name(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    # -- database construction --------------------------------------------------------

    def build_database(
        self,
        n_classes: int = 6,
        max_attrs: int = 3,
        n_objects: int = 20,
    ) -> Tuple[TseDatabase, ViewHandle]:
        """A random tree-shaped base schema, fully selected into one view."""
        db = TseDatabase()
        class_names: List[str] = []
        for index in range(n_classes):
            name = self.fresh_name("C")
            attrs = tuple(
                Attribute(self.fresh_name("a"), domain="int")
                for _ in range(self.rng.randint(1, max_attrs))
            )
            if class_names:
                parent = self.rng.choice(class_names)
                db.define_class(name, attrs, inherits_from=(parent,))
            else:
                db.define_class(name, attrs)
            class_names.append(name)
        view = db.create_view("main", class_names, closure="ignore")
        creates = []
        for _ in range(n_objects):
            target = self.rng.choice(class_names)
            assignments = {
                attr: self.rng.randint(0, 100)
                for attr in self._assignable_attrs(db, target)
            }
            creates.append(
                ("create", {"class_name": target, "assignments": assignments})
            )
        # one atomic batch: population pays the latch/journal fixed costs once
        db.apply_many(creates)
        return db, view

    @staticmethod
    def _assignable_attrs(db: TseDatabase, class_name: str) -> List[str]:
        from repro.schema.types import stored_attributes

        return [
            entry.name for entry in stored_attributes(db.schema.type_of(class_name))
        ]

    # -- random changes ----------------------------------------------------------------

    _OPERATIONS = (
        "add_attribute",
        "delete_attribute",
        "add_edge",
        "delete_edge",
        "add_class",
        "delete_class",
    )

    def random_change(
        self, db: TseDatabase, view: ViewHandle, attempts: int = 12
    ) -> Optional[AppliedChange]:
        """Apply one random valid primitive change; ``None`` when none of the
        sampled candidates was applicable."""
        for _ in range(attempts):
            operation = self.rng.choice(self._OPERATIONS)
            try:
                applied = self._try_operation(db, view, operation)
            except TseError:
                continue
            if applied is not None:
                return applied
        return None

    def _try_operation(
        self, db: TseDatabase, view: ViewHandle, operation: str
    ) -> Optional[AppliedChange]:
        classes = view.class_names()
        if operation == "add_attribute":
            target = self.rng.choice(classes)
            name = self.fresh_name("x")
            view.add_attribute(name, to=target, domain="int")
            return AppliedChange(operation, f"{name} to {target}")
        if operation == "delete_attribute":
            target = self.rng.choice(classes)
            candidates = self._locally_deletable(db, view, target)
            if not candidates:
                return None
            name = self.rng.choice(candidates)
            view.delete_attribute(name, from_=target)
            return AppliedChange(operation, f"{name} from {target}")
        if operation == "add_edge":
            if len(classes) < 2:
                return None
            sup, sub = self.rng.sample(classes, 2)
            view.add_edge(sup, sub)
            return AppliedChange(operation, f"{sup}-{sub}")
        if operation == "delete_edge":
            edges = view.edges()
            if not edges:
                return None
            sup, sub = self.rng.choice(edges)
            view.delete_edge(sup, sub)
            return AppliedChange(operation, f"{sup}-{sub}")
        if operation == "add_class":
            connected = self.rng.choice(classes + [None])
            name = self.fresh_name("N")
            view.add_class(name, connected_to=connected)
            return AppliedChange(operation, f"{name} under {connected}")
        if operation == "delete_class":
            if len(classes) < 3:
                return None
            target = self.rng.choice(classes)
            view.delete_class(target)
            return AppliedChange(operation, target)
        return None  # pragma: no cover - operations tuple is exhaustive

    def _locally_deletable(
        self, db: TseDatabase, view: ViewHandle, view_class: str
    ) -> List[str]:
        """Attributes that the delete-attribute locality rule permits."""
        schema = view.schema
        global_name = schema.global_name_of(view_class)
        own = set(db.schema.type_of(global_name))
        above = set()
        for other in schema.selected:
            if other != global_name and self._is_view_ancestor(schema, other, global_name):
                above |= set(db.schema.type_of(other))
        return sorted(own - above)

    @staticmethod
    def _is_view_ancestor(schema, candidate: str, target: str) -> bool:
        frontier = [target]
        seen = set()
        while frontier:
            current = frontier.pop()
            for sup, sub in schema.edges:
                if sub == current and sup not in seen:
                    if sup == candidate:
                        return True
                    seen.add(sup)
                    frontier.append(sup)
        return False

    def run_trace(
        self, db: TseDatabase, view: ViewHandle, n_changes: int
    ) -> List[AppliedChange]:
        """Apply up to ``n_changes`` random changes; returns those applied."""
        applied = []
        for _ in range(n_changes):
            change = self.random_change(db, view)
            if change is not None:
                applied.append(change)
        return applied
