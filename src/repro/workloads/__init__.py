"""Workload builders: the paper's example schemas and synthetic evolution traces."""

from repro.workloads.university import (
    build_core_schema,
    build_figure3_database,
    build_figure9_database,
    build_figure10_database,
    populate_students,
)

__all__ = [
    "build_core_schema",
    "build_figure3_database",
    "build_figure9_database",
    "build_figure10_database",
    "populate_students",
]

from repro.workloads.generator import AppliedChange, WorkloadGenerator
from repro.workloads.sjoberg import SjobergTrace, TraceStats

__all__ += ["AppliedChange", "WorkloadGenerator", "SjobergTrace", "TraceStats"]
