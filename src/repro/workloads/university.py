"""The university database of figure 2, plus the example populations used by
the figures of section 6.

The paper's running example schema::

    Person(name, age, address, SS#)
      ├── Student(major, advisor)
      │     ├── TA(salary)
      │     └── Grad(thesis)
      ├── TeachingStaff(lecture)   ── TA (also under TeachingStaff, fig. 10)
      └── SupportStaff(boss)       (fig. 9 variant)

The exact class/attribute roster varies slightly between figures; builders
below construct the variant each experiment needs, and populate extents with
the labelled objects (``o1`` .. ``o6``) the paper's figures annotate so the
tests can assert identical sets.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.database import TseDatabase
from repro.core.handles import ViewHandle
from repro.schema.properties import Attribute
from repro.storage.oid import Oid


def build_core_schema(db: TseDatabase) -> None:
    """The figure 2 global schema (content changes variant)."""
    db.define_class(
        "Person",
        [
            Attribute("name", domain="str"),
            Attribute("age", domain="int"),
            Attribute("address", domain="str"),
            Attribute("ssn", domain="str"),
        ],
    )
    db.define_class(
        "Student",
        [Attribute("major", domain="str"), Attribute("advisor", domain="str")],
        inherits_from=("Person",),
    )
    db.define_class(
        "TA", [Attribute("salary", domain="int")], inherits_from=("Student",)
    )
    db.define_class(
        "Grad", [Attribute("thesis", domain="str")], inherits_from=("Student",)
    )


def build_figure3_database() -> Tuple[TseDatabase, ViewHandle]:
    """Figure 3's setting: the VS1 view {Person, Student, TA} over figure 2."""
    db = TseDatabase()
    build_core_schema(db)
    view = db.create_view("VS1", ["Person", "Student", "TA"], closure="ignore")
    return db, view


def build_figure9_database() -> Tuple[TseDatabase, ViewHandle, Dict[str, Oid]]:
    """Figure 9's setting: staff hierarchy with the labelled objects.

    Extents drawn in the figure (global extents)::

        Person       { o1 o2 o3 o4 o5 o6 }
        SupportStaff { o2 o3 }
        TA           { o4 o5 }
        Grader       { o6 }        (subclass of TA)
    """
    db = TseDatabase()
    db.define_class("Person", [Attribute("name", domain="str")])
    db.define_class(
        "SupportStaff", [Attribute("boss", domain="str")], inherits_from=("Person",)
    )
    db.define_class(
        "TA", [Attribute("salary", domain="int")], inherits_from=("Person",)
    )
    db.define_class(
        "Grader", [Attribute("course", domain="str")], inherits_from=("TA",)
    )
    view = db.create_view(
        "VS1", ["Person", "SupportStaff", "TA", "Grader"], closure="ignore"
    )
    objects = {
        "o1": db.engine.create("Person", {"name": "o1"}),
        "o2": db.engine.create("SupportStaff", {"name": "o2", "boss": "b"}),
        "o3": db.engine.create("SupportStaff", {"name": "o3", "boss": "b"}),
        "o4": db.engine.create("TA", {"name": "o4", "salary": 10}),
        "o5": db.engine.create("TA", {"name": "o5", "salary": 11}),
        "o6": db.engine.create("Grader", {"name": "o6", "course": "db"}),
    }
    return db, view, objects


def build_figure10_database() -> Tuple[TseDatabase, ViewHandle, Dict[str, Oid]]:
    """Figure 10's setting: TeachingStaff above TA, with labelled objects.

    Extents drawn in the figure::

        Person        { o1 o2 o3 o4 o5 }
        TeachingStaff { o2 o3 o4 o5 }
        TA            { o4 o5 }
    """
    db = TseDatabase()
    db.define_class("Person", [Attribute("name", domain="str")])
    db.define_class(
        "TeachingStaff",
        [Attribute("lecture", domain="str")],
        inherits_from=("Person",),
    )
    db.define_class(
        "TA", [Attribute("salary", domain="int")], inherits_from=("TeachingStaff",)
    )
    view = db.create_view(
        "VS1", ["Person", "TeachingStaff", "TA"], closure="ignore"
    )
    objects = {
        "o1": db.engine.create("Person", {"name": "o1"}),
        "o2": db.engine.create("TeachingStaff", {"name": "o2", "lecture": "ai"}),
        "o3": db.engine.create("TeachingStaff", {"name": "o3", "lecture": "db"}),
        "o4": db.engine.create("TA", {"name": "o4", "salary": 10}),
        "o5": db.engine.create("TA", {"name": "o5", "salary": 11}),
    }
    return db, view, objects


def populate_students(db: TseDatabase, count: int = 10) -> Dict[str, Oid]:
    """A generic population over the figure 2 schema (figure 3 experiments)."""
    objects: Dict[str, Oid] = {}
    for index in range(count):
        if index % 3 == 0:
            oid = db.engine.create(
                "TA",
                {
                    "name": f"ta{index}",
                    "age": 20 + index,
                    "major": "cs",
                    "salary": 1000 + index,
                },
            )
        elif index % 3 == 1:
            oid = db.engine.create(
                "Grad",
                {
                    "name": f"grad{index}",
                    "age": 24 + index,
                    "major": "ee",
                    "thesis": f"t{index}",
                },
            )
        else:
            oid = db.engine.create(
                "Student",
                {"name": f"s{index}", "age": 18 + index, "major": "math"},
            )
        objects[f"obj{index}"] = oid
    return objects
