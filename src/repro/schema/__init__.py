"""Schema layer: properties, types, classes, the global DAG, and extents."""

from repro.schema.classes import (
    DERIVATION_OPS,
    EXTENT_PRESERVING_OPS,
    ROOT_CLASS,
    UNARY_OPS,
    BaseClass,
    Derivation,
    SchemaClass,
    SharedProperty,
    VirtualClass,
)
from repro.schema.extents import (
    ExtentEvaluator,
    ExtentRelations,
    attribute_reader,
    read_attribute,
    read_path,
)
from repro.schema.graph import GlobalSchema
from repro.schema.properties import (
    ANY_DOMAIN,
    PRIMITIVE_DOMAINS,
    Attribute,
    Method,
    Property,
    ResolvedProperty,
)
from repro.schema.types import (
    Ambiguity,
    TypeMap,
    is_subtype,
    property_names,
    resolve,
    stored_attributes,
    type_signature,
)

__all__ = [
    "DERIVATION_OPS",
    "EXTENT_PRESERVING_OPS",
    "ROOT_CLASS",
    "UNARY_OPS",
    "BaseClass",
    "Derivation",
    "SchemaClass",
    "SharedProperty",
    "VirtualClass",
    "ExtentEvaluator",
    "ExtentRelations",
    "attribute_reader",
    "read_attribute",
    "read_path",
    "GlobalSchema",
    "ANY_DOMAIN",
    "PRIMITIVE_DOMAINS",
    "Attribute",
    "Method",
    "Property",
    "ResolvedProperty",
    "Ambiguity",
    "TypeMap",
    "is_subtype",
    "property_names",
    "resolve",
    "stored_attributes",
    "type_signature",
]
