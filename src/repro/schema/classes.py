"""Schema classes: base classes, virtual classes, and derivations.

The glossary distinction the whole system rests on (appendix of the paper):

* **base classes** can actually store instances;
* **virtual classes** are derived via an object-algebra query; their extent
  is defined by the query over the extents of their *source classes*;
* the **global schema** integrates all of them into one DAG.

A virtual class remembers its :class:`Derivation` — the algebra operator,
source class names and parameters that define it.  Derivations drive three
things downstream: type computation (:mod:`repro.schema.types` rules applied
in :mod:`repro.schema.graph`), extent evaluation and the definitional extent
relations the classifier reasons with (:mod:`repro.schema.extents`), and
update propagation (:mod:`repro.algebra.updates`, the origin-class chase of
section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import DuplicateProperty, InvalidDerivation
from repro.schema.properties import Property

#: The system root class every schema hangs off (section 6.6.1 calls it ROOT,
#: figure 15 calls it OBJECT; one name suffices).
ROOT_CLASS = "ROOT"

#: Operator tags a derivation may carry.
DERIVATION_OPS = frozenset(
    {"select", "hide", "refine", "union", "difference", "intersect"}
)

#: Operators with exactly one source class.
UNARY_OPS = frozenset({"select", "hide", "refine"})

#: Operators whose result's extent provably equals the source's extent.
EXTENT_PRESERVING_OPS = frozenset({"hide", "refine"})


@dataclass(frozen=True)
class SharedProperty:
    """The ``refine C1:x for C2`` form of section 3.2.

    Instances of the refined class share the property ``name`` as defined in
    ``from_class`` — the same code block for methods, the same storage
    definition for stored attributes.
    """

    from_class: str
    name: str


@dataclass(frozen=True)
class Derivation:
    """The defining query of a virtual class.

    Exactly one operator; ``sources`` holds one class name for unary
    operators and two for set operators.  Parameters:

    * ``predicate`` — for ``select``; any object with ``matches(reader)`` and
      ``signature()`` (see :mod:`repro.algebra.expressions`).
    * ``hidden`` — property names removed by ``hide``.
    * ``new_properties`` — properties *introduced* by ``refine`` (the
      capacity-augmenting case when they are stored attributes).
    * ``shared_properties`` — properties *inherited from another class* by
      the extended ``refine C1:x for C2`` form.
    """

    op: str
    sources: Tuple[str, ...]
    predicate: Optional[object] = None
    hidden: Tuple[str, ...] = ()
    new_properties: Tuple[Property, ...] = ()
    shared_properties: Tuple[SharedProperty, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in DERIVATION_OPS:
            raise InvalidDerivation(f"unknown algebra operator {self.op!r}")
        expected = 1 if self.op in UNARY_OPS else 2
        if len(self.sources) != expected:
            raise InvalidDerivation(
                f"{self.op} takes {expected} source class(es), "
                f"got {len(self.sources)}"
            )
        if self.op == "select" and self.predicate is None:
            raise InvalidDerivation("select requires a predicate")
        if self.op == "hide" and not self.hidden:
            raise InvalidDerivation("hide requires at least one property name")
        if self.op == "refine" and not (self.new_properties or self.shared_properties):
            raise InvalidDerivation("refine requires at least one property")

    @property
    def source(self) -> str:
        """The single source of a unary derivation."""
        if self.op not in UNARY_OPS:
            raise InvalidDerivation(f"{self.op} has multiple sources")
        return self.sources[0]

    def signature(self) -> tuple:
        """Structural fingerprint for duplicate-derivation detection."""
        pred_sig = self.predicate.signature() if self.predicate is not None else None
        return (
            self.op,
            self.sources,
            pred_sig,
            tuple(sorted(self.hidden)),
            tuple(sorted(p.signature() for p in self.new_properties)),
            tuple(sorted((s.from_class, s.name) for s in self.shared_properties)),
        )

    def describe(self) -> str:
        """Render the derivation in the paper's algebra syntax."""
        if self.op == "select":
            return f"select from {self.source} where {self.predicate}"
        if self.op == "hide":
            return f"hide {', '.join(self.hidden)} from {self.source}"
        if self.op == "refine":
            parts = [p.name for p in self.new_properties]
            parts += [f"{s.from_class}:{s.name}" for s in self.shared_properties]
            return f"refine {', '.join(parts)} for {self.source}"
        return f"{self.op}({self.sources[0]}, {self.sources[1]})"


class SchemaClass:
    """Common behaviour of base and virtual classes.

    Classes are identified by name within one global schema.  ``meta`` is an
    open bag used by the TSE layer to record provenance (which schema change
    created the class, which class it primes/replaces in a view).
    """

    is_base: bool = False

    def __init__(self, name: str) -> None:
        if not name or not all(part.isidentifier() for part in name.split("'")[:1]):
            raise InvalidDerivation(f"invalid class name: {name!r}")
        self.name = name
        self.meta: Dict[str, object] = {}
        #: set False for object-generating derivations (section 9 future work)
        self.updatable: bool = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "base" if self.is_base else "virtual"
        return f"<{tag} class {self.name}>"


class BaseClass(SchemaClass):
    """A class that actually stores instances.

    ``inherits_from`` records the *authored* is-a parents used for property
    inheritance.  The classifier may later rewire the DAG around the class
    (inserting virtual classes above or below it), but inheritance semantics
    of a base class never change after authoring — that is exactly why
    existing views are unaffected by view evolution (Propositions B of
    section 6).
    """

    is_base = True

    def __init__(
        self,
        name: str,
        properties: Tuple[Property, ...] = (),
        inherits_from: Tuple[str, ...] = (ROOT_CLASS,),
    ) -> None:
        super().__init__(name)
        self.local_properties: Dict[str, Property] = {}
        for prop in properties:
            self.define_property(prop)
        self.inherits_from: Tuple[str, ...] = tuple(inherits_from)

    def define_property(self, prop: Property) -> None:
        """Attach a locally defined property (rejects duplicates by name)."""
        if prop.name in self.local_properties:
            raise DuplicateProperty(
                f"class {self.name!r} already defines {prop.name!r}"
            )
        self.local_properties[prop.name] = prop


class VirtualClass(SchemaClass):
    """A class derived by the object algebra.

    ``propagation_source`` names the source class that ``create``/``add``
    updates should be routed to when this class is a union created by the
    add-edge / delete-edge algorithms (the substituted-class rule of section
    6.5.4); ``None`` means the generic rules of section 3.4 apply.
    """

    is_base = False

    def __init__(self, name: str, derivation: Derivation) -> None:
        super().__init__(name)
        self.derivation = derivation
        self.propagation_source: Optional[str] = None


def root_class() -> BaseClass:
    """A fresh ROOT class (no properties, no parents)."""
    root = BaseClass(ROOT_CLASS, properties=(), inherits_from=())
    return root
