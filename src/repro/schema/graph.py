"""The global schema: one DAG integrating all base and virtual classes.

Section 1 of the paper: *"all objects are associated with a single underlying
global schema"* and *"each version of the schema is implemented via a view
defined on the global schema"*.  This module owns that single DAG — class
registry, is-a edges, type computation and the structural queries every other
layer needs (ancestors, descendants, transitive reduction, invariants).

Type computation is *intensional*: a base class's type comes from its
authored parents (``inherits_from``) plus local properties, and a virtual
class's type is a pure function of its derivation (section 3.2 rules).
Classification may rewire DAG edges around a class but never changes any
class's type — that stability is what makes existing views immune to view
evolution (the Proposition B arguments of section 6).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    CyclicSchema,
    DuplicateClass,
    InvariantViolation,
    SchemaError,
    UnknownClass,
)
from repro.schema.classes import (
    EXTENT_PRESERVING_OPS,
    ROOT_CLASS,
    BaseClass,
    Derivation,
    SchemaClass,
    VirtualClass,
    root_class,
)
from repro.schema.properties import Attribute, Property, ResolvedProperty
from repro.schema import types as typemod
from repro.schema.types import TypeMap


class GlobalSchema:
    """Registry of classes plus the is-a DAG, with cached type computation."""

    def __init__(self) -> None:
        self._classes: Dict[str, SchemaClass] = {}
        self._supers: Dict[str, Set[str]] = {}
        self._subs: Dict[str, Set[str]] = {}
        self._generation = 0
        self._type_cache: Dict[str, TypeMap] = {}
        self._type_cache_generation = -1
        #: memoized reachability closures keyed by (kind, class); kinds are
        #: "anc" (strict ancestors), "desc" (strict descendants) and "anc+"
        #: (ancestors-or-self, the inverted member-class index extent
        #: evaluation unions over)
        self._closure_cache: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._closure_generation = -1
        root = root_class()
        self._classes[root.name] = root
        self._supers[root.name] = set()
        self._subs[root.name] = set()

    # -- registry -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __getitem__(self, name: str) -> SchemaClass:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClass(f"no class named {name!r} in the global schema") from None

    def class_names(self) -> List[str]:
        return sorted(self._classes)

    def classes(self) -> Iterator[SchemaClass]:
        return iter(self._classes.values())

    def base_classes(self) -> List[BaseClass]:
        return [c for c in self._classes.values() if isinstance(c, BaseClass)]

    def virtual_classes(self) -> List[VirtualClass]:
        return [c for c in self._classes.values() if isinstance(c, VirtualClass)]

    @property
    def generation(self) -> int:
        """Monotone counter bumped on every structural mutation."""
        return self._generation

    def _dirty(self) -> None:
        self._generation += 1

    # -- class creation -------------------------------------------------------

    def add_base_class(
        self,
        name: str,
        properties: Tuple[Property, ...] = (),
        inherits_from: Tuple[str, ...] = (ROOT_CLASS,),
    ) -> BaseClass:
        """Author a new base class under the given parents."""
        if name in self._classes:
            raise DuplicateClass(f"class {name!r} already exists")
        for parent in inherits_from:
            if parent not in self._classes:
                raise UnknownClass(f"unknown superclass {parent!r} for {name!r}")
        cls = BaseClass(name, properties=properties, inherits_from=inherits_from)
        self._classes[name] = cls
        self._supers[name] = set()
        self._subs[name] = set()
        for parent in inherits_from:
            self.add_edge(parent, name)
        if not inherits_from:
            self.add_edge(ROOT_CLASS, name)
        self._dirty()
        return cls

    def define_local_property(self, class_name: str, prop: Property) -> None:
        """Attach a locally defined property to a base class (authoring API).

        Goes through the schema so the type cache is invalidated; mutating
        ``BaseClass.local_properties`` directly would leave stale types.
        """
        cls = self[class_name]
        if not isinstance(cls, BaseClass):
            raise SchemaError(
                f"cannot define local properties on virtual class {class_name!r}"
            )
        cls.define_property(prop)
        self._dirty()

    def add_virtual_class_raw(self, name: str, derivation: Derivation) -> VirtualClass:
        """Register a virtual class *without* positioning it in the DAG.

        Only the classifier should call this; it follows up by computing the
        class's direct supers and subs.  The class's sources must exist.
        """
        if name in self._classes:
            raise DuplicateClass(f"class {name!r} already exists")
        for source in derivation.sources:
            if source not in self._classes:
                raise UnknownClass(f"unknown source class {source!r} for {name!r}")
        vc = VirtualClass(name, derivation)
        self._classes[name] = vc
        self._supers[name] = set()
        self._subs[name] = set()
        self._dirty()
        return vc

    def remove_class(self, name: str) -> None:
        """Remove a class and all its edges (used to discard duplicates)."""
        if name == ROOT_CLASS:
            raise SchemaError("cannot remove ROOT")
        self[name]  # raises UnknownClass when absent
        for sup in list(self._supers[name]):
            self.remove_edge(sup, name)
        for sub in list(self._subs[name]):
            self.remove_edge(name, sub)
        del self._classes[name]
        del self._supers[name]
        del self._subs[name]
        self._dirty()

    def rename_class(self, old: str, new: str) -> None:
        """Rename a class globally (used by version merging, section 7)."""
        cls = self[old]
        if new in self._classes:
            raise DuplicateClass(f"class {new!r} already exists")
        self._classes[new] = cls
        del self._classes[old]
        cls.name = new
        self._supers[new] = self._supers.pop(old)
        self._subs[new] = self._subs.pop(old)
        for peers in self._supers.values():
            if old in peers:
                peers.discard(old)
                peers.add(new)
        for peers in self._subs.values():
            if old in peers:
                peers.discard(old)
                peers.add(new)
        for other in self._classes.values():
            if isinstance(other, BaseClass) and old in other.inherits_from:
                other.inherits_from = tuple(
                    new if p == old else p for p in other.inherits_from
                )
            if isinstance(other, VirtualClass) and old in other.derivation.sources:
                der = other.derivation
                other.derivation = Derivation(
                    op=der.op,
                    sources=tuple(new if s == old else s for s in der.sources),
                    predicate=der.predicate,
                    hidden=der.hidden,
                    new_properties=der.new_properties,
                    shared_properties=der.shared_properties,
                )
        self._dirty()

    # -- edges ------------------------------------------------------------------

    def add_edge(self, sup: str, sub: str) -> None:
        """Add a direct is-a edge making ``sup`` a direct superclass of ``sub``."""
        if sup not in self._classes:
            raise UnknownClass(f"unknown class {sup!r}")
        if sub not in self._classes:
            raise UnknownClass(f"unknown class {sub!r}")
        if sup == sub:
            raise CyclicSchema(f"class {sup!r} cannot be its own superclass")
        if self.is_ancestor(sub, sup):
            raise CyclicSchema(
                f"edge {sup!r} -> {sub!r} would create an is-a cycle"
            )
        self._subs[sup].add(sub)
        self._supers[sub].add(sup)
        self._dirty()

    def remove_edge(self, sup: str, sub: str) -> None:
        if sub not in self._subs.get(sup, ()):  # pragma: no cover - guard
            raise SchemaError(f"no direct edge {sup!r} -> {sub!r}")
        self._subs[sup].discard(sub)
        self._supers[sub].discard(sup)
        self._dirty()

    def has_edge(self, sup: str, sub: str) -> bool:
        return sub in self._subs.get(sup, ())

    def direct_supers(self, name: str) -> FrozenSet[str]:
        self[name]
        return frozenset(self._supers[name])

    def direct_subs(self, name: str) -> FrozenSet[str]:
        self[name]
        return frozenset(self._subs[name])

    # -- reachability --------------------------------------------------------------

    def _closure(self, kind: str, name: str, links: Dict[str, Set[str]]) -> FrozenSet[str]:
        """Transitive closure over ``links``, memoized per generation.

        Cached sub-closures are spliced in instead of re-walked, so a family
        of queries over one DAG costs one traversal total, not one per class.
        """
        if self._closure_generation != self._generation:
            self._closure_cache.clear()
            self._closure_generation = self._generation
        key = (kind, name)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        frontier = list(links[name])
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            sub = self._closure_cache.get((kind, current))
            if sub is not None:
                seen.add(current)
                seen |= sub
                continue
            seen.add(current)
            frontier.extend(links[current])
        result = frozenset(seen)
        self._closure_cache[key] = result
        return result

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All strict ancestors of ``name`` (superclasses, transitively)."""
        self[name]
        return self._closure("anc", name, self._supers)

    def ancestors_or_self(self, name: str) -> FrozenSet[str]:
        """``{name} | ancestors(name)`` as one memoized frozenset.

        This is the inverted member-class -> base-ancestors index: a direct
        membership in ``name`` contributes to exactly the base extents in
        this set, so base-extent evaluation and incremental membership
        deltas are containment checks instead of per-pair is-a BFS walks.
        """
        if self._closure_generation != self._generation:
            self._closure_cache.clear()
            self._closure_generation = self._generation
        key = ("anc+", name)
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        result = frozenset({name}) | self.ancestors(name)
        self._closure_cache[key] = result
        return result

    def descendants(self, name: str) -> FrozenSet[str]:
        """All strict descendants of ``name`` (subclasses, transitively)."""
        self[name]
        return self._closure("desc", name, self._subs)

    def is_ancestor(self, sup: str, sub: str) -> bool:
        """True when ``sup`` is a strict ancestor of ``sub``."""
        return sup in self.ancestors(sub)

    def is_ancestor_or_equal(self, sup: str, sub: str) -> bool:
        return sup == sub or self.is_ancestor(sup, sub)

    def topological_order(self) -> List[str]:
        """Class names ordered supers-before-subs."""
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for sup in sorted(self._supers[name]):
                visit(sup)
            order.append(name)

        for name in sorted(self._classes):
            visit(name)
        return order

    def transitive_reduction_over(
        self, selected: Iterable[str]
    ) -> List[Tuple[str, str]]:
        """Minimal is-a edges among ``selected`` implied by the global DAG.

        This is the core of the view schema generation algorithm ([21]): the
        view's generalization hierarchy is the transitive reduction of the
        global subsumption relation restricted to the selected classes.
        """
        chosen = sorted(set(selected))
        for name in chosen:
            self[name]
        above: Dict[str, Set[str]] = {
            name: set(self.ancestors(name)) & set(chosen) for name in chosen
        }
        edges: List[Tuple[str, str]] = []
        for sub in chosen:
            for sup in sorted(above[sub]):
                # keep sup -> sub unless some intermediate selected class sits
                # strictly between them
                if any(
                    sup in above[mid] and mid in above[sub]
                    for mid in chosen
                    if mid not in (sup, sub)
                ):
                    continue
                edges.append((sup, sub))
        return edges

    # -- types ------------------------------------------------------------------

    def type_of(self, name: str) -> TypeMap:
        """The type (property library) of a class, cached per generation."""
        if self._type_cache_generation != self._generation:
            self._type_cache = {}
            self._type_cache_generation = self._generation
        cached = self._type_cache.get(name)
        if cached is not None:
            return cached
        computed = self._compute_type(name, frozenset())
        self._type_cache[name] = computed
        return computed

    def _compute_type(self, name: str, active: FrozenSet[str]) -> TypeMap:
        if name in active:
            raise InvariantViolation(
                f"cyclic type dependency through class {name!r}"
            )
        cached = self._type_cache.get(name)
        if cached is not None:
            return cached
        cls = self[name]
        active = active | {name}
        if isinstance(cls, BaseClass):
            result = self._base_type(cls, active)
        else:
            result = self._derived_type(cls, active)
        self._type_cache[name] = result
        return result

    def _base_type(self, cls: BaseClass, active: FrozenSet[str]) -> TypeMap:
        inherited = typemod.merge_inherited(
            self._compute_type(parent, active) for parent in cls.inherits_from
        )
        local = {
            prop.name: ResolvedProperty(
                prop=prop,
                origin_class=cls.name,
                storage_class=(
                    cls.name
                    if isinstance(prop, Attribute) and prop.stored
                    else None
                ),
            )
            for prop in cls.local_properties.values()
        }
        return typemod.apply_local(inherited, local)

    def _derived_type(self, cls: VirtualClass, active: FrozenSet[str]) -> TypeMap:
        der = cls.derivation
        if der.op in ("select", "difference"):
            return dict(self._compute_type(der.sources[0], active))
        if der.op == "hide":
            source_type = self._compute_type(der.source, active)
            remaining = typemod.subtract(source_type, der.hidden)
            # Promotion rule of section 6.2.3: the surviving properties of the
            # hidden-from class are projected upward into this class and win
            # later same-name conflicts.
            promoted: TypeMap = {}
            for prop_name, entry in remaining.items():
                if isinstance(entry, ResolvedProperty) and not entry.promoted:
                    promoted[prop_name] = ResolvedProperty(
                        prop=entry.prop,
                        origin_class=entry.origin_class,
                        storage_class=entry.storage_class,
                        promoted=True,
                    )
                else:
                    promoted[prop_name] = entry
            return promoted
        if der.op == "refine":
            source_type = self._compute_type(der.source, active)
            additions: Dict[str, ResolvedProperty] = {}
            for prop in der.new_properties:
                additions[prop.name] = ResolvedProperty(
                    prop=prop,
                    origin_class=cls.name,
                    storage_class=(
                        cls.name
                        if isinstance(prop, Attribute) and prop.stored
                        else None
                    ),
                )
            for shared in der.shared_properties:
                donor_type = self._compute_type(shared.from_class, active)
                resolved = typemod.resolve(
                    donor_type, shared.name, class_name=shared.from_class
                )
                additions[shared.name] = resolved
            return typemod.augment(source_type, additions)
        first = self._compute_type(der.sources[0], active)
        second = self._compute_type(der.sources[1], active)
        if der.op == "union":
            return typemod.common(first, second)
        if der.op == "intersect":
            return typemod.combined(first, second)
        raise InvariantViolation(f"unhandled derivation op {der.op!r}")

    # -- invariants ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants, raising :class:`InvariantViolation`.

        * the is-a relation is acyclic (guaranteed by ``add_edge`` but
          re-checked here as a safety net);
        * every class other than ROOT reaches ROOT;
        * along every edge, the superclass's property names are a subset of
          the subclass's (type monotonicity, modulo overriding which keeps
          names identical).
        """
        order = self.topological_order()
        if len(order) != len(self._classes):  # pragma: no cover - defensive
            raise InvariantViolation("is-a relation is cyclic")
        for name in self._classes:
            if name == ROOT_CLASS:
                continue
            if ROOT_CLASS not in self.ancestors(name):
                raise InvariantViolation(f"class {name!r} does not reach ROOT")
        for sup, subs in self._subs.items():
            sup_names = set(self.type_of(sup))
            for sub in subs:
                sub_names = set(self.type_of(sub))
                if not sup_names <= sub_names:
                    missing = sorted(sup_names - sub_names)
                    raise InvariantViolation(
                        f"edge {sup!r} -> {sub!r} breaks type monotonicity; "
                        f"{sub!r} lacks {missing}"
                    )

    # -- mementos ------------------------------------------------------------------

    def memento(self) -> tuple:
        """A restorable snapshot of the schema's structure.

        The snapshot is shallow: it captures which classes and edges exist.
        That suffices for rolling back a failed evolution pipeline because
        pipelines only *add* classes (which a restore forgets) and add/remove
        edges — they never mutate pre-existing class objects.
        """
        return (
            dict(self._classes),
            {name: set(sups) for name, sups in self._supers.items()},
            {name: set(subs) for name, subs in self._subs.items()},
        )

    def restore(self, memento: tuple) -> None:
        """Roll the schema structure back to a prior :meth:`memento`."""
        classes, supers, subs = memento
        self._classes = dict(classes)
        self._supers = {name: set(sups) for name, sups in supers.items()}
        self._subs = {name: set(s) for name, s in subs.items()}
        self._dirty()

    # -- convenience --------------------------------------------------------------

    def subclasses_within(self, name: str, universe: Iterable[str]) -> List[str]:
        """Descendants of ``name`` (inclusive) restricted to ``universe``.

        The section 6 algorithms run "in the context of a view": they only
        create primed classes for subclasses *within* the view (section 2.2's
        point that the Grad class is untouched).
        """
        allowed = set(universe)
        return [
            cls
            for cls in [name, *sorted(self.descendants(name))]
            if cls in allowed
        ]
