"""Types as property libraries: merging, overriding, subsumption.

In the paper's model a *type* is the set of properties (attributes and
methods) defined for a class.  This module represents a type as a mapping
from property name to a :class:`~repro.schema.properties.ResolvedProperty`
— or to an :class:`Ambiguity` when two genuinely distinct same-named
properties are inherited into the same class.  The paper's rules (sections
6.1.1 and 6.2.3) govern what happens on a clash:

* the *same* definition arriving along two inheritance paths (diamond) is a
  non-event — identity is ``(origin class, name)``;
* a *locally defined* property overrides inherited same-named ones;
* a property *promoted upward by a hide derivation* has priority over other
  inherited same-named properties (the section 6.2.3 resolution rule);
* anything else is recorded as an :class:`Ambiguity` and raises
  :class:`~repro.errors.AmbiguousProperty` only when actually *invoked*,
  leaving the user free to disambiguate by renaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import AmbiguousProperty, UnknownProperty
from repro.schema.properties import Property, ResolvedProperty


@dataclass(frozen=True)
class Ambiguity:
    """Two or more distinct same-named properties inherited into one class."""

    candidates: Tuple[ResolvedProperty, ...]

    @property
    def name(self) -> str:
        return self.candidates[0].name

    def describe(self) -> str:
        origins = ", ".join(sorted(c.origin_class for c in self.candidates))
        return f"property {self.name!r} is ambiguous (defined in {origins})"


#: One entry of a type map.
TypeEntry = Union[ResolvedProperty, Ambiguity]

#: A type: property name -> entry.
TypeMap = Dict[str, TypeEntry]


def _entry_candidates(entry: TypeEntry) -> Tuple[ResolvedProperty, ...]:
    if isinstance(entry, Ambiguity):
        return entry.candidates
    return (entry,)


def _combine(name: str, candidates: Iterable[ResolvedProperty]) -> TypeEntry:
    """Collapse candidate resolutions for one name into a single entry.

    Deduplicates by property identity, applies the promoted-property priority
    rule, and produces an :class:`Ambiguity` if more than one distinct
    definition survives.
    """
    by_identity: Dict[Tuple[str, str], ResolvedProperty] = {}
    for cand in candidates:
        key = cand.identity()
        existing = by_identity.get(key)
        # keep the promoted variant if either resolution carries the flag
        if existing is None or (cand.promoted and not existing.promoted):
            by_identity[key] = cand
    survivors = list(by_identity.values())
    if len(survivors) == 1:
        return survivors[0]
    promoted = [c for c in survivors if c.promoted]
    if len(promoted) == 1:
        return promoted[0]
    return Ambiguity(tuple(sorted(survivors, key=lambda c: c.identity())))


def merge_inherited(parent_types: Iterable[TypeMap]) -> TypeMap:
    """Merge the types of several superclasses into one inherited map."""
    gathered: Dict[str, List[ResolvedProperty]] = {}
    for parent in parent_types:
        for name, entry in parent.items():
            gathered.setdefault(name, []).extend(_entry_candidates(entry))
    return {name: _combine(name, cands) for name, cands in gathered.items()}


def apply_local(inherited: TypeMap, local: Mapping[str, ResolvedProperty]) -> TypeMap:
    """Overlay locally defined properties; local definitions override."""
    result: TypeMap = dict(inherited)
    result.update(local)
    return result


def subtract(base: TypeMap, names: Iterable[str]) -> TypeMap:
    """Type of a hide derivation: the base type minus the hidden names."""
    removed = set(names)
    return {name: entry for name, entry in base.items() if name not in removed}


def augment(base: TypeMap, additions: Mapping[str, ResolvedProperty]) -> TypeMap:
    """Type of a refine derivation: the base type plus the new properties."""
    result: TypeMap = dict(base)
    result.update(additions)
    return result


def common(first: TypeMap, second: TypeMap) -> TypeMap:
    """Type of a union derivation: the lowest common supertype.

    Properties present in both operands survive; when both sides carry the
    same identity it is one property, otherwise the clash rules apply (the
    paper promotes common properties of the two source classes up to the
    union class, section 6.5.3).
    """
    shared_names = set(first) & set(second)
    result: TypeMap = {}
    for name in shared_names:
        candidates = _entry_candidates(first[name]) + _entry_candidates(second[name])
        result[name] = _combine(name, candidates)
    return result


def combined(first: TypeMap, second: TypeMap) -> TypeMap:
    """Type of an intersect derivation: the greatest common subtype."""
    gathered: Dict[str, List[ResolvedProperty]] = {}
    for source in (first, second):
        for name, entry in source.items():
            gathered.setdefault(name, []).extend(_entry_candidates(entry))
    return {name: _combine(name, cands) for name, cands in gathered.items()}


# ---------------------------------------------------------------------------
# Lookup and comparison
# ---------------------------------------------------------------------------

def resolve(type_map: TypeMap, name: str, *, class_name: str = "?") -> ResolvedProperty:
    """Look up a usable property, raising on absence or ambiguity."""
    entry = type_map.get(name)
    if entry is None:
        raise UnknownProperty(f"class {class_name!r} has no property {name!r}")
    if isinstance(entry, Ambiguity):
        raise AmbiguousProperty(f"in class {class_name!r}: {entry.describe()}")
    return entry


def resolve_qualified(
    type_map: TypeMap, reference: str, *, class_name: str = "?"
) -> ResolvedProperty:
    """Resolve a property reference that may be *origin-qualified*.

    ``"Origin:name"`` picks, out of an ambiguous entry, the candidate whose
    definition was introduced by class ``Origin`` — the mechanism behind the
    paper's disambiguation-by-renaming (section 6.1.1): the user-facing
    alias maps to a qualified reference, making exactly one of the clashing
    definitions addressable again.  An unqualified reference behaves like
    :func:`resolve`.
    """
    if ":" not in reference:
        return resolve(type_map, reference, class_name=class_name)
    origin, _, name = reference.partition(":")
    entry = type_map.get(name)
    if entry is None:
        raise UnknownProperty(f"class {class_name!r} has no property {name!r}")
    for candidate in _entry_candidates(entry):
        if candidate.origin_class == origin:
            return candidate
    raise UnknownProperty(
        f"class {class_name!r} has no {name!r} definition originating "
        f"from {origin!r}"
    )


def property_names(type_map: TypeMap) -> FrozenSet[str]:
    return frozenset(type_map)


def is_subtype(sub: TypeMap, sup: TypeMap) -> bool:
    """True when ``sub`` defines every property of ``sup``.

    Comparison is by name (types are libraries of named functions in the
    paper's model); overriding means a subclass may carry a different
    definition under the same name and still be a subtype.
    """
    return set(sup) <= set(sub)


def type_signature(type_map: TypeMap) -> FrozenSet[tuple]:
    """A structural fingerprint used by duplicate-class detection.

    Two classes with equal signatures define the same property identities —
    the classifier additionally requires provably equal extents before
    declaring a duplicate (section 7).
    """
    parts = []
    for name in sorted(type_map):
        for cand in _entry_candidates(type_map[name]):
            parts.append((name,) + cand.identity())
    return frozenset(parts)


def stored_attributes(type_map: TypeMap) -> List[ResolvedProperty]:
    """All unambiguous stored attributes of a type, sorted by name."""
    result = []
    for name in sorted(type_map):
        entry = type_map[name]
        if isinstance(entry, Ambiguity):
            continue
        if entry.storage_class is not None:
            result.append(entry)
    return result
