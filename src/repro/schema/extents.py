"""Extent evaluation and definitional extent relations.

Two distinct jobs live here:

1. :class:`ExtentEvaluator` computes the (always *global*, per footnote 14)
   extent of any class against a populated instance pool.  Base-class extents
   come from direct memberships plus upward is-a reachability; virtual-class
   extents are evaluated from their derivations.

2. :class:`ExtentRelations` *proves* subset/equality relationships between
   class extents without looking at instances, using the definitional rules
   of the algebra (``extent(refine(S)) = extent(S)``,
   ``extent(select(S,p)) ⊆ extent(S)``, union ⊇ arguments, ...).  The
   classifier positions new virtual classes with these proofs so that
   classification is a schema-level operation, exactly as in MultiView [17];
   the instance-level evaluator doubles as a verification oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.algebra import compiler as compilermod
from repro.errors import PredicateError, UnknownProperty
from repro.obs.tracing import Tracer
from repro.schema.classes import (
    EXTENT_PRESERVING_OPS,
    BaseClass,
    VirtualClass,
)
from repro.schema.graph import GlobalSchema
from repro.schema.properties import Attribute, ResolvedProperty
from repro.schema import types as typemod
from repro.storage.oid import Oid
from repro.objectmodel.slicing import InstancePool, PoolDelta


@dataclass
class ExtentStats:
    """Observability counters for extent evaluation and maintenance.

    ``hits``/``misses`` count cache lookups in :meth:`ExtentEvaluator.extent`;
    ``full_recomputes`` counts from-scratch evaluations (one per miss);
    ``deltas_applied`` counts per-class candidate rechecks performed by the
    incremental engine instead of recomputes; ``invalidations`` counts cache
    entries dropped by targeted (dependency-aware) invalidation — the
    fan-out of writes the engine could not maintain incrementally;
    ``events`` counts pool deltas observed.
    """

    hits: int = 0
    misses: int = 0
    deltas_applied: int = 0
    full_recomputes: int = 0
    invalidations: int = 0
    events: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.deltas_applied = 0
        self.full_recomputes = self.invalidations = self.events = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hit_ratio, 4),
            "deltas_applied": self.deltas_applied,
            "full_recomputes": self.full_recomputes,
            "invalidations": self.invalidations,
            "events": self.events,
        }


def read_attribute(
    schema: GlobalSchema,
    pool: InstancePool,
    class_name: str,
    oid: Oid,
    attr_name: str,
) -> object:
    """Read ``attr_name`` of object ``oid`` as typed by ``class_name``.

    Resolution walks the class's type to find the storage class whose slice
    holds the value; unwritten stored attributes yield their declared
    default.  Methods cannot be read this way.
    """
    type_map = schema.type_of(class_name)
    resolved = typemod.resolve_qualified(type_map, attr_name, class_name=class_name)
    if not isinstance(resolved.prop, Attribute):
        raise PredicateError(
            f"{attr_name!r} is a method of {class_name!r}, not an attribute"
        )
    if resolved.storage_class is None:
        compute = getattr(resolved.prop, "compute", None)
        if compute is not None:
            # derived attribute: evaluate against this object's own reader
            return compute(attribute_reader(schema, pool, class_name, oid))
        return resolved.prop.default
    return pool.get_value(
        oid, resolved.storage_class, resolved.prop.name,
        default=resolved.prop.default,
    )


def read_path(
    schema: GlobalSchema,
    pool: InstancePool,
    class_name: str,
    oid: Oid,
    path: str,
) -> object:
    """Read a dotted attribute path, dereferencing object-valued attributes.

    ``read_path(..., "Student", oid, "advisor.name")`` reads the ``advisor``
    attribute of the student (whose declared domain must be a class of the
    schema), then reads ``name`` of the referenced object as typed by that
    domain class.  A ``None`` anywhere along the path yields ``None``; a
    non-OID value with path remaining is a :class:`PredicateError`.
    """
    segments = path.split(".")
    current_class = class_name
    current_oid = oid
    for index, segment in enumerate(segments):
        value = read_attribute(schema, pool, current_class, current_oid, segment)
        if index == len(segments) - 1:
            return value
        if value is None:
            return None
        if not isinstance(value, Oid) or not pool.exists(value):
            raise PredicateError(
                f"path segment {segment!r} of {path!r} did not yield a live "
                f"object reference"
            )
        type_map = schema.type_of(current_class)
        resolved = typemod.resolve_qualified(
            type_map, segment, class_name=current_class
        )
        domain = resolved.prop.domain if isinstance(resolved.prop, Attribute) else None
        if domain is None or domain not in schema:
            raise PredicateError(
                f"attribute {segment!r} of {current_class!r} has no class-"
                f"valued domain to traverse"
            )
        current_class = domain
        current_oid = value
    raise PredicateError(f"empty path {path!r}")  # pragma: no cover


def attribute_reader(
    schema: GlobalSchema, pool: InstancePool, class_name: str, oid: Oid
) -> Callable[[str], object]:
    """A closure reading attributes of one object in one class context —
    the shape selection predicates evaluate against.  Dotted names traverse
    object-valued attributes (see :func:`read_path`)."""

    def reader(attr_name: str) -> object:
        if "." in attr_name:
            return read_path(schema, pool, class_name, oid, attr_name)
        return read_attribute(schema, pool, class_name, oid, attr_name)

    return reader


class ReaderPlans:
    """Pre-resolved attribute read plans, cached per schema generation.

    :func:`read_attribute` resolves ``type_of`` + ``resolve_qualified`` on
    *every* read, yet within one schema generation the resolution of
    ``(class_name, attr)`` never changes.  This cache resolves each pair
    once and keeps a per-attribute closure ``fn(oid) -> value``:

    * plain stored attributes collapse to a single ``pool.get_value`` call
      with the storage class, bare name, and default pre-bound;
    * everything else — dotted paths, derived attributes, unresolvable or
      method reads — falls back to the generic :func:`read_path` /
      :func:`read_attribute` *per call*, so errors surface with identical
      type, message, and timing to the un-planned reader.

    A schema generation bump discards all plans (schema changes are rare
    next to the reads these plans serve).
    """

    __slots__ = ("schema", "pool", "_generation", "_plans")

    def __init__(self, schema: GlobalSchema, pool: InstancePool) -> None:
        self.schema = schema
        self.pool = pool
        self._generation = -1
        self._plans: Dict[str, Dict[str, Callable[[Oid], object]]] = {}

    def _class_plans(self, class_name: str) -> Dict[str, Callable[[Oid], object]]:
        if self._generation != self.schema.generation:
            self._plans = {}
            self._generation = self.schema.generation
        plans = self._plans.get(class_name)
        if plans is None:
            plans = self._plans[class_name] = {}
        return plans

    def _resolve(self, class_name: str, attr_name: str) -> Callable[[Oid], object]:
        schema, pool = self.schema, self.pool
        if "." not in attr_name:
            try:
                type_map = schema.type_of(class_name)
                resolved = typemod.resolve_qualified(
                    type_map, attr_name, class_name=class_name
                )
            except Exception:
                resolved = None
            if (
                resolved is not None
                and isinstance(resolved.prop, Attribute)
                and resolved.storage_class is not None
            ):
                return pool.value_reader(
                    resolved.storage_class,
                    resolved.prop.name,
                    resolved.prop.default,
                )
            if (
                resolved is not None
                and isinstance(resolved.prop, Attribute)
                and getattr(resolved.prop, "compute", None) is None
            ):
                default = resolved.prop.default
                return lambda oid: default

            def generic(oid: Oid) -> object:
                return read_attribute(schema, pool, class_name, oid, attr_name)

            return generic

        def dotted(oid: Oid) -> object:
            return read_path(schema, pool, class_name, oid, attr_name)

        return dotted

    def oid_reader(self, class_name: str, attr_name: str) -> Callable[[Oid], object]:
        """The planned column reader itself: ``fn(oid) -> value``.

        This is the function :meth:`reader` dispatches to per attribute —
        exposed directly so row-compiled predicates can bind each column
        once instead of building a per-object reader closure."""
        plans = self._class_plans(class_name)
        fn = plans.get(attr_name)
        if fn is None:
            fn = plans[attr_name] = self._resolve(class_name, attr_name)
        return fn

    def reader(self, class_name: str, oid: Oid) -> Callable[[str], object]:
        """A planned :data:`Reader` for one object in one class context —
        drop-in for :func:`attribute_reader`, ~one dict hit per read."""
        plans = self._class_plans(class_name)
        resolve = self._resolve

        def reader(attr_name: str) -> object:
            fn = plans.get(attr_name)
            if fn is None:
                fn = resolve(class_name, attr_name)
                plans[attr_name] = fn
            return fn(oid)

        return reader


class ExtentEvaluator:
    """Computes global extents, cached per (schema, pool) generation.

    This is the *generation-wipe* evaluator: any write to the pool bumps its
    generation and the next read discards the whole cache.  It is retained
    as the from-scratch oracle (equivalence tests, benchmarks baselines);
    production paths use :class:`IncrementalExtentEvaluator`.
    """

    def __init__(
        self,
        schema: GlobalSchema,
        pool: InstancePool,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.schema = schema
        self.pool = pool
        self.stats = ExtentStats()
        #: pipeline tracer; a private disabled one when not injected, so
        #: hot paths only ever pay an attribute read + branch
        self.tracer = tracer if tracer is not None else Tracer()
        self._cache: Dict[str, FrozenSet[Oid]] = {}
        #: value of ``_current_key()`` when the cache was last valid —
        #: a (schema, pool) generation tuple here, a bare schema generation
        #: in the incremental subclass
        self._cache_key: object = (-1, -1)
        #: pre-resolved attribute read plans (shared by all select rechecks)
        self.plans = ReaderPlans(schema, pool)
        #: select class -> row matcher ``fn(oid) -> bool``, valid for one
        #: (schema generation, compiler toggle epoch) pair
        self._matchers: Dict[str, Callable[[Oid], bool]] = {}
        self._matchers_key: Tuple[int, int] = (-1, -1)

    def _matcher(self, class_name: str, predicate, source: str) -> Callable[[Oid], bool]:
        """The OID-level evaluator for one select class's predicate —
        row-compiled when possible, reader-based interpreter otherwise;
        cached because derivations are immutable per generation."""
        key = (self.schema.generation, compilermod.compilation_epoch())
        if key != self._matchers_key:
            self._matchers.clear()
            self._matchers_key = key
        fn = self._matchers.get(class_name)
        if fn is None:
            plans = self.plans
            fn = compilermod.row_matcher(
                predicate,
                lambda attr: plans.oid_reader(source, attr),
                lambda oid: plans.reader(source, oid),
            )
            self._matchers[class_name] = fn
        return fn

    def _current_key(self) -> Tuple[int, int]:
        return (self.schema.generation, self.pool.generation)

    def invalidate(self) -> None:
        self._cache.clear()
        self._cache_key = self._current_key()

    def extent(self, class_name: str) -> FrozenSet[Oid]:
        """The global extent of the class as a frozen set of conceptual OIDs."""
        key = self._current_key()
        if key != self._cache_key:
            self._cache.clear()
            self._cache_key = key
        cached = self._cache.get(class_name)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        self.stats.full_recomputes += 1
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("extent_recompute", class_name=class_name) as span:
                result = self._evaluate(class_name, frozenset())
                span.set(size=len(result))
        else:
            result = self._evaluate(class_name, frozenset())
        self._cache[class_name] = result
        return result

    def _evaluate(self, class_name: str, active: FrozenSet[str]) -> FrozenSet[Oid]:
        if class_name in active:  # pragma: no cover - derivations are acyclic
            raise PredicateError(f"cyclic extent dependency at {class_name!r}")
        cls = self.schema[class_name]
        active = active | {class_name}
        if isinstance(cls, BaseClass):
            return self._base_extent(cls)
        assert isinstance(cls, VirtualClass)
        der = cls.derivation
        if der.op in EXTENT_PRESERVING_OPS:
            return self._evaluate(der.source, active)
        if der.op == "select":
            source_extent = self._evaluate(der.source, active)
            matches = self._matcher(class_name, der.predicate, der.source)
            return frozenset(oid for oid in source_extent if matches(oid))
        first = self._evaluate(der.sources[0], active)
        second = self._evaluate(der.sources[1], active)
        if der.op == "union":
            return first | second
        if der.op == "difference":
            return first - second
        if der.op == "intersect":
            return first & second
        raise PredicateError(f"unhandled derivation op {der.op!r}")  # pragma: no cover

    def _base_extent(self, cls: BaseClass) -> FrozenSet[Oid]:
        """Members of every (direct-membership) class from which ``cls`` is
        reachable upward in the is-a DAG."""
        result: Set[Oid] = set()
        for member_class in self.pool.classes_with_members():
            if member_class not in self.schema:
                continue
            if self.schema.is_ancestor_or_equal(cls.name, member_class):
                result |= self.pool.members_direct(member_class)
        return frozenset(result)

    def is_member(self, oid: Oid, class_name: str) -> bool:
        return oid in self.extent(class_name)


#: Sentinel candidate meaning "this class's delta is unknown — drop its
#: cache entry (and its dependents') instead of rechecking candidates".
_INVALIDATE = object()


class _DerivationDeps:
    """Dependency index over one schema generation's derivations.

    Answers the two questions delta propagation asks:

    * which classes sit (transitively) *above* a changed class in the
      derivation DAG (``dependents`` + ``topo_order``), and
    * which select classes can a write to attribute ``a`` affect
      (``attr_deps``), split into classes safe for per-object recheck and
      classes needing conservative invalidation (``complex_selects``,
      ``wildcard_selects``).
    """

    def __init__(self, schema: GlobalSchema) -> None:
        self.schema = schema
        #: source class -> virtual classes directly derived from it
        self.dependents: Dict[str, Tuple[str, ...]] = {}
        #: every class, derivation sources strictly before their dependents
        self.topo_order: Tuple[str, ...] = ()
        #: attribute name -> select classes whose predicate reads it
        self.attr_deps: Dict[str, Tuple[str, ...]] = {}
        #: select classes whose predicate traverses object references
        #: (dotted paths): a relevant write can flip *other* objects'
        #: membership, so per-object recheck is unsound — invalidate.
        self.complex_selects: FrozenSet[str] = frozenset()
        #: select classes affected by *any* value event (derived attributes,
        #: unresolvable reads, or predicates without an ``attributes`` hook)
        self.wildcard_selects: FrozenSet[str] = frozenset()
        self._build()

    def _build(self) -> None:
        schema = self.schema
        dependents: Dict[str, List[str]] = {}
        for cls in schema.virtual_classes():
            for source in cls.derivation.sources:
                dependents.setdefault(source, []).append(cls.name)
        self.dependents = {
            name: tuple(sorted(deps)) for name, deps in dependents.items()
        }
        # topological order over derivation edges (iterative DFS; derivation
        # chains grow one class per evolution, easily past recursion limits)
        order: List[str] = []
        visited: Set[str] = set()
        for root in schema.class_names():
            if root in visited:
                continue
            stack: List[Tuple[str, bool]] = [(root, False)]
            while stack:
                name, expanded = stack.pop()
                if expanded:
                    order.append(name)
                    continue
                if name in visited:
                    continue
                visited.add(name)
                stack.append((name, True))
                cls = schema[name]
                if isinstance(cls, VirtualClass):
                    for source in cls.derivation.sources:
                        if source not in visited:
                            stack.append((source, False))
        self.topo_order = tuple(order)

        attr_deps: Dict[str, Set[str]] = {}
        complex_selects: Set[str] = set()
        wildcard: Set[str] = set()
        for cls in schema.virtual_classes():
            der = cls.derivation
            if der.op != "select":
                continue
            attributes = getattr(der.predicate, "attributes", None)
            if attributes is None:
                wildcard.add(cls.name)
                complex_selects.add(cls.name)
                continue
            try:
                paths = attributes()
            except NotImplementedError:
                wildcard.add(cls.name)
                complex_selects.add(cls.name)
                continue
            try:
                type_map = schema.type_of(der.source)
            except Exception:
                type_map = None
            for path in paths:
                segments = path.split(".")
                if len(segments) > 1:
                    complex_selects.add(cls.name)
                for segment in segments:
                    attr_deps.setdefault(segment, set()).add(cls.name)
                # a derived attribute's compute() reads arbitrary other
                # attributes we cannot enumerate -> wildcard
                head = segments[0]
                entry = type_map.get(head) if type_map is not None else None
                if entry is None or not isinstance(entry, ResolvedProperty):
                    wildcard.add(cls.name)
                    complex_selects.add(cls.name)
                elif (
                    entry.storage_class is None
                    and getattr(entry.prop, "compute", None) is not None
                ):
                    wildcard.add(cls.name)
                    complex_selects.add(cls.name)
        self.attr_deps = {
            name: tuple(sorted(classes)) for name, classes in attr_deps.items()
        }
        self.complex_selects = frozenset(complex_selects)
        self.wildcard_selects = frozenset(wildcard)


class IncrementalExtentEvaluator(ExtentEvaluator):
    """Maintains cached extents from pool deltas instead of wiping them.

    The evaluator subscribes to the pool's typed deltas and, per event,
    computes the set of *candidate* objects whose membership may have
    changed in each affected class, walking the derivation DAG in
    topological order (sources before dependents).  Each affected cached
    class rechecks only its candidates against post-state semantics — the
    standard incremental rules for select/union/difference/intersect fall
    out of the recheck because source extents are maintained first.

    Candidate sets may over-approximate the true delta (rechecking a
    non-changing candidate is a no-op), which keeps every rule uniform and
    exact.  Where even candidates cannot be bounded — dotted-path or
    derived-attribute predicates, predicates that raise — the class and its
    derivation cone are invalidated instead (conservative but targeted:
    unrelated classes keep their caches).

    Schema changes (generation bump) wipe the cache and rebuild the
    dependency index; they are rare next to data operations.
    """

    def __init__(
        self,
        schema: GlobalSchema,
        pool: InstancePool,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(schema, pool, tracer=tracer)
        self._deps: Optional[_DerivationDeps] = None
        self._deps_generation = -1
        pool.add_delta_listener(self._on_delta)

    # the cache key tracks only the schema; pool changes arrive as deltas.
    # A bare int (not a tuple) keeps the per-read key check allocation-free;
    # it can never collide with the base class's tuple keys.
    def _current_key(self):
        return self.schema.generation

    def _base_extent(self, cls: BaseClass) -> FrozenSet[Oid]:
        """Union of direct-member buckets via the memoized ancestor index
        (a containment check per bucket instead of an is-a BFS per pair)."""
        schema = self.schema
        result: Set[Oid] = set()
        for member_class, oids in self.pool.direct_membership_items():
            if member_class not in schema:
                continue
            if cls.name in schema.ancestors_or_self(member_class):
                result |= oids
        return frozenset(result)

    # ------------------------------------------------------------------
    # delta intake
    # ------------------------------------------------------------------

    def _dependency_index(self) -> _DerivationDeps:
        if self._deps is None or self._deps_generation != self.schema.generation:
            self._deps = _DerivationDeps(self.schema)
            self._deps_generation = self.schema.generation
        return self._deps

    def _on_delta(self, delta: PoolDelta) -> None:
        self.stats.events += 1
        key = self._current_key()
        if key != self._cache_key:
            # the schema moved since the cache was filled; everything is
            # stale regardless of this delta
            self._cache.clear()
            self._cache_key = key
            return
        if not self._cache:
            return
        kind = delta.kind
        if kind == "reset":
            self.stats.invalidations += len(self._cache)
            self._cache.clear()
            return
        if kind == "destroy":
            self._on_destroy(delta.oid)
            return
        if kind in ("add_membership", "remove_membership"):
            seeds = self._membership_seeds(delta.oid, delta.class_name)
        else:  # set_value / remove_value
            deps = self._dependency_index()
            if not deps.wildcard_selects and delta.attr not in deps.attr_deps:
                # no select reads this attribute: the write cannot move any
                # cached extent, so skip seed construction entirely
                return
            seeds = self._value_seeds(delta.oid, delta.attr)
        if seeds:
            self._propagate(seeds)

    def _membership_seeds(self, oid: Oid, member_class: str) -> Dict[str, object]:
        """A membership change in ``member_class`` can move ``oid`` in or
        out of exactly the base classes at-or-above it; everything else is
        reached through the derivation cone during propagation.

        Gaining or losing a membership also gains or loses the *slice*
        stored at ``member_class``, i.e. the values of that class's local
        attributes — which can flip selects reading those attributes even
        when reached through sources entirely outside the seeded cone
        (the object may stay a member via another is-a path while the
        attribute values vanish), so their value seeds are merged in."""
        if member_class not in self.schema:
            return {}
        seeds: Dict[str, object] = {}
        for base in self.schema.ancestors_or_self(member_class):
            if self.schema[base].is_base:
                seeds[base] = {oid}
        cls = self.schema[member_class]
        if cls.is_base:
            for attr in cls.local_properties:
                for name, cand in self._value_seeds(oid, attr).items():
                    existing = seeds.get(name)
                    if cand is _INVALIDATE or existing is _INVALIDATE:
                        seeds[name] = _INVALIDATE
                    elif existing is None:
                        seeds[name] = set(cand)
                    else:
                        existing |= cand
        return seeds

    def _value_seeds(self, oid: Oid, attr: str) -> Dict[str, object]:
        """A value write can only change select classes whose predicate
        reads ``attr`` — for simple predicates only the written object's
        membership, for complex ones an unbounded set (invalidate)."""
        deps = self._dependency_index()
        seeds: Dict[str, object] = {}
        for name in deps.wildcard_selects:
            seeds[name] = _INVALIDATE
        for name in deps.attr_deps.get(attr, ()):
            if name in deps.complex_selects:
                seeds[name] = _INVALIDATE
            elif name not in seeds:
                seeds[name] = {oid}
        return seeds

    def _on_destroy(self, oid: Oid) -> None:
        """A destroyed object leaves every extent; that removal *is* the
        exact delta for every cached class.  Complex predicates may now see
        dangling references, so their cones are invalidated and re-raise
        (or recompute) on the next read, matching from-scratch semantics."""
        for name, extent in list(self._cache.items()):
            if oid in extent:
                self._cache[name] = extent - {oid}
                self.stats.deltas_applied += 1
        deps = self._dependency_index()
        seeds: Dict[str, object] = {
            name: _INVALIDATE for name in deps.complex_selects
        }
        if seeds:
            self._propagate(seeds)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def _propagate(self, seeds: Dict[str, object]) -> None:
        """Walk the derivation DAG once, sources before dependents, merging
        candidate sets upward and rechecking them against cached classes.

        The tracer guard keeps the disabled path identical to the untraced
        one: a single attribute read and branch before delegating."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "extent_maintain", seeds=len(seeds), classes=",".join(sorted(seeds))
            ):
                self._propagate_seeds(seeds)
        else:
            self._propagate_seeds(seeds)

    def _propagate_seeds(self, seeds: Dict[str, object]) -> None:
        deps = self._dependency_index()
        pending: Dict[str, object] = dict(seeds)
        for name in deps.topo_order:
            cand = pending.get(name)
            if cand is None:
                continue
            if cand is not _INVALIDATE:
                cached = self._cache.get(name)
                if cached is not None:
                    try:
                        self._recheck(name, cand, cached)
                    except Exception:
                        # a predicate that cannot be evaluated right now
                        # (e.g. mid-rollback): fall back to invalidation;
                        # the next read recomputes (and surfaces the error
                        # exactly when a from-scratch evaluator would)
                        self._cache.pop(name, None)
                        self.stats.invalidations += 1
                        cand = _INVALIDATE
            elif self._cache.pop(name, None) is not None:
                self.stats.invalidations += 1
            for dependent in deps.dependents.get(name, ()):
                existing = pending.get(dependent)
                if cand is _INVALIDATE or existing is _INVALIDATE:
                    pending[dependent] = _INVALIDATE
                elif existing is None:
                    pending[dependent] = set(cand)
                else:
                    existing |= cand

    def _recheck(
        self, name: str, candidates: Set[Oid], cached: FrozenSet[Oid]
    ) -> None:
        """Apply the exact membership delta for ``candidates`` to one
        cached extent; non-candidates are untouched by construction."""
        added: Set[Oid] = set()
        removed: Set[Oid] = set()
        for oid in candidates:
            inside = self._contains(name, oid)
            if inside and oid not in cached:
                added.add(oid)
            elif not inside and oid in cached:
                removed.add(oid)
        self.stats.deltas_applied += 1
        if added or removed:
            self._cache[name] = (cached - removed) | added

    def _contains(self, name: str, oid: Oid) -> bool:
        """Post-state membership of one object in one class, leaning on the
        already-maintained extents of the class's sources."""
        cls = self.schema[name]
        if isinstance(cls, BaseClass):
            if not self.pool.exists(oid):
                return False
            schema = self.schema
            for direct in self.pool.get(oid).direct_classes:
                if direct in schema and name in schema.ancestors_or_self(direct):
                    return True
            return False
        assert isinstance(cls, VirtualClass)
        der = cls.derivation
        if der.op in EXTENT_PRESERVING_OPS:
            return oid in self.extent(der.source)
        if der.op == "select":
            if oid not in self.extent(der.source):
                return False
            matches = self._matcher(name, der.predicate, der.source)
            return bool(matches(oid))
        first = self.extent(der.sources[0])
        second = self.extent(der.sources[1])
        if der.op == "union":
            return oid in first or oid in second
        if der.op == "difference":
            return oid in first and oid not in second
        if der.op == "intersect":
            return oid in first and oid in second
        raise PredicateError(f"unhandled derivation op {der.op!r}")  # pragma: no cover


class ExtentRelations:
    """Definitional subset/equality proofs between class extents.

    ``subset(a, b)`` returns True only when ``extent(a) ⊆ extent(b)`` is
    *provable* from derivations and existing is-a edges; False means
    "unknown", never "disjoint".  The prover is sound but deliberately
    incomplete (so is any schema-level classifier); the hypothesis tests
    check soundness against the instance-level evaluator.
    """

    def __init__(self, schema: GlobalSchema) -> None:
        self.schema = schema
        self._memo: Dict[Tuple[str, str], bool] = {}
        self._memo_generation = -1

    def _fresh_memo(self) -> None:
        if self._memo_generation != self.schema.generation:
            self._memo = {}
            self._memo_generation = self.schema.generation

    def subset(self, sub: str, sup: str) -> bool:
        """Provably ``extent(sub) ⊆ extent(sup)``?"""
        self._fresh_memo()
        return self._subset(sub, sup, frozenset())

    def equal(self, first: str, second: str) -> bool:
        """Provably equal extents?"""
        return self.subset(first, second) and self.subset(second, first)

    def _subset(self, sub: str, sup: str, active: FrozenSet[Tuple[str, str]]) -> bool:
        if sub == sup:
            return True
        key = (sub, sup)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in active:
            return False  # pessimistic on cycles; keeps the prover sound
        active = active | {key}
        result = self._subset_uncached(sub, sup, active)
        self._memo[key] = result
        return result

    def _subset_uncached(
        self, sub: str, sup: str, active: FrozenSet[Tuple[str, str]]
    ) -> bool:
        # Existing is-a edges are extent-sound by construction.
        if self.schema.is_ancestor(sup, sub):
            return True
        sub_cls = self.schema[sub]
        sup_cls = self.schema[sup]
        # Normalise through extent-preserving derivations on either side.
        if (
            isinstance(sub_cls, VirtualClass)
            and sub_cls.derivation.op in EXTENT_PRESERVING_OPS
        ):
            if self._subset(sub_cls.derivation.source, sup, active):
                return True
        if (
            isinstance(sup_cls, VirtualClass)
            and sup_cls.derivation.op in EXTENT_PRESERVING_OPS
        ):
            if self._subset(sub, sup_cls.derivation.source, active):
                return True
        # Shrinking derivations on the sub side.
        if isinstance(sub_cls, VirtualClass):
            der = sub_cls.derivation
            if der.op in ("select", "difference"):
                if self._subset(der.sources[0], sup, active):
                    return True
            elif der.op == "union":
                if self._subset(der.sources[0], sup, active) and self._subset(
                    der.sources[1], sup, active
                ):
                    return True
            elif der.op == "intersect":
                if self._subset(der.sources[0], sup, active) or self._subset(
                    der.sources[1], sup, active
                ):
                    return True
        # Growing derivations on the sup side.
        if isinstance(sup_cls, VirtualClass):
            der = sup_cls.derivation
            if der.op == "union":
                if self._subset(sub, der.sources[0], active) or self._subset(
                    sub, der.sources[1], active
                ):
                    return True
        # Congruence: the same operator applied to pairwise-subsumed sources
        # yields subsumed results.  This is what positions a replayed
        # derivation (the add-class algorithm, figure 13 (e)) directly under
        # its template class.
        if isinstance(sub_cls, VirtualClass) and isinstance(sup_cls, VirtualClass):
            da, db = sub_cls.derivation, sup_cls.derivation
            if da.op == db.op:
                if (
                    da.op == "select"
                    and da.predicate.signature() == db.predicate.signature()
                    and self._subset(da.sources[0], db.sources[0], active)
                ):
                    return True
                if (
                    da.op == "difference"
                    and self._subset(da.sources[0], db.sources[0], active)
                    and self._subset(db.sources[1], da.sources[1], active)
                ):
                    return True
                if da.op == "intersect" and (
                    (
                        self._subset(da.sources[0], db.sources[0], active)
                        and self._subset(da.sources[1], db.sources[1], active)
                    )
                    or (
                        self._subset(da.sources[0], db.sources[1], active)
                        and self._subset(da.sources[1], db.sources[0], active)
                    )
                ):
                    return True
        return False
