"""Extent evaluation and definitional extent relations.

Two distinct jobs live here:

1. :class:`ExtentEvaluator` computes the (always *global*, per footnote 14)
   extent of any class against a populated instance pool.  Base-class extents
   come from direct memberships plus upward is-a reachability; virtual-class
   extents are evaluated from their derivations.

2. :class:`ExtentRelations` *proves* subset/equality relationships between
   class extents without looking at instances, using the definitional rules
   of the algebra (``extent(refine(S)) = extent(S)``,
   ``extent(select(S,p)) ⊆ extent(S)``, union ⊇ arguments, ...).  The
   classifier positions new virtual classes with these proofs so that
   classification is a schema-level operation, exactly as in MultiView [17];
   the instance-level evaluator doubles as a verification oracle in tests.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.errors import PredicateError, UnknownProperty
from repro.schema.classes import (
    EXTENT_PRESERVING_OPS,
    BaseClass,
    VirtualClass,
)
from repro.schema.graph import GlobalSchema
from repro.schema.properties import Attribute, ResolvedProperty
from repro.schema import types as typemod
from repro.storage.oid import Oid
from repro.objectmodel.slicing import InstancePool


def read_attribute(
    schema: GlobalSchema,
    pool: InstancePool,
    class_name: str,
    oid: Oid,
    attr_name: str,
) -> object:
    """Read ``attr_name`` of object ``oid`` as typed by ``class_name``.

    Resolution walks the class's type to find the storage class whose slice
    holds the value; unwritten stored attributes yield their declared
    default.  Methods cannot be read this way.
    """
    type_map = schema.type_of(class_name)
    resolved = typemod.resolve_qualified(type_map, attr_name, class_name=class_name)
    if not isinstance(resolved.prop, Attribute):
        raise PredicateError(
            f"{attr_name!r} is a method of {class_name!r}, not an attribute"
        )
    if resolved.storage_class is None:
        compute = getattr(resolved.prop, "compute", None)
        if compute is not None:
            # derived attribute: evaluate against this object's own reader
            return compute(attribute_reader(schema, pool, class_name, oid))
        return resolved.prop.default
    return pool.get_value(
        oid, resolved.storage_class, resolved.prop.name,
        default=resolved.prop.default,
    )


def read_path(
    schema: GlobalSchema,
    pool: InstancePool,
    class_name: str,
    oid: Oid,
    path: str,
) -> object:
    """Read a dotted attribute path, dereferencing object-valued attributes.

    ``read_path(..., "Student", oid, "advisor.name")`` reads the ``advisor``
    attribute of the student (whose declared domain must be a class of the
    schema), then reads ``name`` of the referenced object as typed by that
    domain class.  A ``None`` anywhere along the path yields ``None``; a
    non-OID value with path remaining is a :class:`PredicateError`.
    """
    segments = path.split(".")
    current_class = class_name
    current_oid = oid
    for index, segment in enumerate(segments):
        value = read_attribute(schema, pool, current_class, current_oid, segment)
        if index == len(segments) - 1:
            return value
        if value is None:
            return None
        if not isinstance(value, Oid) or not pool.exists(value):
            raise PredicateError(
                f"path segment {segment!r} of {path!r} did not yield a live "
                f"object reference"
            )
        type_map = schema.type_of(current_class)
        resolved = typemod.resolve_qualified(
            type_map, segment, class_name=current_class
        )
        domain = resolved.prop.domain if isinstance(resolved.prop, Attribute) else None
        if domain is None or domain not in schema:
            raise PredicateError(
                f"attribute {segment!r} of {current_class!r} has no class-"
                f"valued domain to traverse"
            )
        current_class = domain
        current_oid = value
    raise PredicateError(f"empty path {path!r}")  # pragma: no cover


def attribute_reader(
    schema: GlobalSchema, pool: InstancePool, class_name: str, oid: Oid
) -> Callable[[str], object]:
    """A closure reading attributes of one object in one class context —
    the shape selection predicates evaluate against.  Dotted names traverse
    object-valued attributes (see :func:`read_path`)."""

    def reader(attr_name: str) -> object:
        if "." in attr_name:
            return read_path(schema, pool, class_name, oid, attr_name)
        return read_attribute(schema, pool, class_name, oid, attr_name)

    return reader


class ExtentEvaluator:
    """Computes global extents, cached per (schema, pool) generation."""

    def __init__(self, schema: GlobalSchema, pool: InstancePool) -> None:
        self.schema = schema
        self.pool = pool
        self._cache: Dict[str, FrozenSet[Oid]] = {}
        self._cache_key: Tuple[int, int] = (-1, -1)

    def _current_key(self) -> Tuple[int, int]:
        return (self.schema.generation, self.pool.generation)

    def invalidate(self) -> None:
        self._cache.clear()
        self._cache_key = self._current_key()

    def extent(self, class_name: str) -> FrozenSet[Oid]:
        """The global extent of the class as a frozen set of conceptual OIDs."""
        key = self._current_key()
        if key != self._cache_key:
            self._cache.clear()
            self._cache_key = key
        cached = self._cache.get(class_name)
        if cached is not None:
            return cached
        result = self._evaluate(class_name, frozenset())
        self._cache[class_name] = result
        return result

    def _evaluate(self, class_name: str, active: FrozenSet[str]) -> FrozenSet[Oid]:
        if class_name in active:  # pragma: no cover - derivations are acyclic
            raise PredicateError(f"cyclic extent dependency at {class_name!r}")
        cls = self.schema[class_name]
        active = active | {class_name}
        if isinstance(cls, BaseClass):
            return self._base_extent(cls)
        assert isinstance(cls, VirtualClass)
        der = cls.derivation
        if der.op in EXTENT_PRESERVING_OPS:
            return self._evaluate(der.source, active)
        if der.op == "select":
            source_extent = self._evaluate(der.source, active)
            matched = set()
            for oid in source_extent:
                reader = attribute_reader(self.schema, self.pool, der.source, oid)
                if der.predicate.matches(reader):
                    matched.add(oid)
            return frozenset(matched)
        first = self._evaluate(der.sources[0], active)
        second = self._evaluate(der.sources[1], active)
        if der.op == "union":
            return first | second
        if der.op == "difference":
            return first - second
        if der.op == "intersect":
            return first & second
        raise PredicateError(f"unhandled derivation op {der.op!r}")  # pragma: no cover

    def _base_extent(self, cls: BaseClass) -> FrozenSet[Oid]:
        """Members of every (direct-membership) class from which ``cls`` is
        reachable upward in the is-a DAG."""
        result: Set[Oid] = set()
        for member_class in self.pool.classes_with_members():
            if member_class not in self.schema:
                continue
            if self.schema.is_ancestor_or_equal(cls.name, member_class):
                result |= self.pool.members_direct(member_class)
        return frozenset(result)

    def is_member(self, oid: Oid, class_name: str) -> bool:
        return oid in self.extent(class_name)


class ExtentRelations:
    """Definitional subset/equality proofs between class extents.

    ``subset(a, b)`` returns True only when ``extent(a) ⊆ extent(b)`` is
    *provable* from derivations and existing is-a edges; False means
    "unknown", never "disjoint".  The prover is sound but deliberately
    incomplete (so is any schema-level classifier); the hypothesis tests
    check soundness against the instance-level evaluator.
    """

    def __init__(self, schema: GlobalSchema) -> None:
        self.schema = schema
        self._memo: Dict[Tuple[str, str], bool] = {}
        self._memo_generation = -1

    def _fresh_memo(self) -> None:
        if self._memo_generation != self.schema.generation:
            self._memo = {}
            self._memo_generation = self.schema.generation

    def subset(self, sub: str, sup: str) -> bool:
        """Provably ``extent(sub) ⊆ extent(sup)``?"""
        self._fresh_memo()
        return self._subset(sub, sup, frozenset())

    def equal(self, first: str, second: str) -> bool:
        """Provably equal extents?"""
        return self.subset(first, second) and self.subset(second, first)

    def _subset(self, sub: str, sup: str, active: FrozenSet[Tuple[str, str]]) -> bool:
        if sub == sup:
            return True
        key = (sub, sup)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in active:
            return False  # pessimistic on cycles; keeps the prover sound
        active = active | {key}
        result = self._subset_uncached(sub, sup, active)
        self._memo[key] = result
        return result

    def _subset_uncached(
        self, sub: str, sup: str, active: FrozenSet[Tuple[str, str]]
    ) -> bool:
        # Existing is-a edges are extent-sound by construction.
        if self.schema.is_ancestor(sup, sub):
            return True
        sub_cls = self.schema[sub]
        sup_cls = self.schema[sup]
        # Normalise through extent-preserving derivations on either side.
        if (
            isinstance(sub_cls, VirtualClass)
            and sub_cls.derivation.op in EXTENT_PRESERVING_OPS
        ):
            if self._subset(sub_cls.derivation.source, sup, active):
                return True
        if (
            isinstance(sup_cls, VirtualClass)
            and sup_cls.derivation.op in EXTENT_PRESERVING_OPS
        ):
            if self._subset(sub, sup_cls.derivation.source, active):
                return True
        # Shrinking derivations on the sub side.
        if isinstance(sub_cls, VirtualClass):
            der = sub_cls.derivation
            if der.op in ("select", "difference"):
                if self._subset(der.sources[0], sup, active):
                    return True
            elif der.op == "union":
                if self._subset(der.sources[0], sup, active) and self._subset(
                    der.sources[1], sup, active
                ):
                    return True
            elif der.op == "intersect":
                if self._subset(der.sources[0], sup, active) or self._subset(
                    der.sources[1], sup, active
                ):
                    return True
        # Growing derivations on the sup side.
        if isinstance(sup_cls, VirtualClass):
            der = sup_cls.derivation
            if der.op == "union":
                if self._subset(sub, der.sources[0], active) or self._subset(
                    sub, der.sources[1], active
                ):
                    return True
        # Congruence: the same operator applied to pairwise-subsumed sources
        # yields subsumed results.  This is what positions a replayed
        # derivation (the add-class algorithm, figure 13 (e)) directly under
        # its template class.
        if isinstance(sub_cls, VirtualClass) and isinstance(sup_cls, VirtualClass):
            da, db = sub_cls.derivation, sup_cls.derivation
            if da.op == db.op:
                if (
                    da.op == "select"
                    and da.predicate.signature() == db.predicate.signature()
                    and self._subset(da.sources[0], db.sources[0], active)
                ):
                    return True
                if (
                    da.op == "difference"
                    and self._subset(da.sources[0], db.sources[0], active)
                    and self._subset(db.sources[1], da.sources[1], active)
                ):
                    return True
                if da.op == "intersect" and (
                    (
                        self._subset(da.sources[0], db.sources[0], active)
                        and self._subset(da.sources[1], db.sources[1], active)
                    )
                    or (
                        self._subset(da.sources[0], db.sources[1], active)
                        and self._subset(da.sources[1], db.sources[0], active)
                    )
                ):
                    return True
        return False
