"""Property definitions: attributes and methods.

The paper's glossary: an *attribute* is the state of an object, a *method* is
its behaviour, and *property* refers to both.  A *type* is the library of
properties defined for a class (see :mod:`repro.schema.types`).

Two kinds of attribute matter to TSE:

* **stored** attributes occupy storage in the object's implementation slice
  for the class that introduced them.  The capacity-augmenting extension of
  ``refine`` (section 3.2) is precisely the ability of a *virtual* class to
  introduce stored attributes.
* **derived** attributes are computed from other properties and occupy no
  storage: ``Attribute("area", stored=False, compute=fn)`` where ``fn``
  receives an attribute reader for the object and returns the value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro.errors import InvalidDerivation

#: Domain tag accepted for untyped attributes.
ANY_DOMAIN = "any"

#: Primitive domain tags understood by the type-closure check — any other
#: domain string is interpreted as a class name that must be present in a
#: type-closed view schema.
PRIMITIVE_DOMAINS = frozenset(
    {ANY_DOMAIN, "int", "float", "str", "bool", "date", "oid"}
)


@dataclass(frozen=True)
class Attribute:
    """A named attribute definition.

    ``domain`` is either a primitive tag from :data:`PRIMITIVE_DOMAINS` or a
    class name (making the attribute object-valued, which the type-closure
    check of the View Manager inspects).  ``required`` marks attributes that
    must receive a value at creation — footnote 4 of the paper notes that
    hiding a REQUIRED attribute defeats the default-value workaround, which
    our update layer reproduces.
    """

    name: str
    domain: str = ANY_DOMAIN
    required: bool = False
    default: object = None
    stored: bool = True
    #: for derived attributes: callable(reader) -> value, where ``reader``
    #: maps attribute names of the same object to their values
    compute: Optional[Callable] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise InvalidDerivation(f"invalid attribute name: {self.name!r}")
        if self.compute is not None and self.stored:
            raise InvalidDerivation(
                f"attribute {self.name!r}: computed attributes must be "
                f"declared stored=False"
            )

    @property
    def kind(self) -> str:
        return "attribute"

    def signature(self) -> Tuple[str, str, str]:
        """Structural signature used for type comparison."""
        return ("attribute", self.name, self.domain)

    def renamed(self, new_name: str) -> "Attribute":
        """A copy of this definition under another name (disambiguation)."""
        return Attribute(
            name=new_name,
            domain=self.domain,
            required=self.required,
            default=self.default,
            stored=self.stored,
            compute=self.compute,
        )


@dataclass(frozen=True)
class Method:
    """A named method definition.

    ``body`` is a Python callable invoked as ``body(handle, *args)`` where
    ``handle`` is the view-bound object handle — our stand-in for an Opal
    code block.  Methods compare by name only for type-subsumption purposes
    (the paper's types are libraries of named functions).
    """

    name: str
    body: Optional[Callable] = field(default=None, compare=False)
    doc: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise InvalidDerivation(f"invalid method name: {self.name!r}")

    @property
    def kind(self) -> str:
        return "method"

    def signature(self) -> Tuple[str, str]:
        return ("method", self.name)

    def renamed(self, new_name: str) -> "Method":
        return Method(name=new_name, body=self.body, doc=self.doc)


#: A property is either an attribute or a method.
Property = Union[Attribute, Method]


def is_stored_attribute(prop: Property) -> bool:
    """True when the property occupies storage in an implementation slice."""
    return isinstance(prop, Attribute) and prop.stored


@dataclass(frozen=True)
class ResolvedProperty:
    """A property as seen from a particular class.

    ``origin_class`` is the class that *introduced* the definition (a base
    class or a capacity-augmenting refine virtual class).  Two resolved
    properties denote the same property exactly when they share name and
    origin — this is how diamond inheritance of one definition avoids being
    flagged as a conflict while genuinely distinct same-named definitions
    are (section 6.1.1).

    ``storage_class`` is the class whose implementation slice holds the
    value, for stored attributes; ``None`` otherwise.

    ``promoted`` marks properties that were projected upward out of their
    defining class by a hide derivation; the conflict-resolution rule of
    section 6.2.3 gives these priority over other inherited same-named
    properties.
    """

    prop: Property
    origin_class: str
    storage_class: Optional[str] = None
    promoted: bool = False

    @property
    def name(self) -> str:
        return self.prop.name

    @property
    def kind(self) -> str:
        return self.prop.kind

    def signature(self) -> tuple:
        return self.prop.signature()

    def identity(self) -> Tuple[str, str]:
        """The (origin, name) pair that makes two resolutions 'the same'."""
        return (self.origin_class, self.prop.name)

    def renamed(self, new_name: str) -> "ResolvedProperty":
        return ResolvedProperty(
            prop=self.prop.renamed(new_name),
            origin_class=self.origin_class,
            storage_class=self.storage_class,
            promoted=self.promoted,
        )
