"""repro — a reproduction of "A Transparent Object-Oriented Schema Change
Approach Using View Evolution" (Ra & Rundensteiner, ICDE 1995).

The public API lives in :class:`repro.TseDatabase`; see README.md for a
quickstart and DESIGN.md for the system inventory.
"""

from repro.core.database import TseDatabase
from repro.core.handles import ObjectHandle, ViewClassHandle, ViewHandle
from repro.schema.properties import Attribute, Method
from repro.schema.classes import Derivation, SharedProperty, ROOT_CLASS
from repro.algebra.expressions import (
    And,
    Compare,
    IsIn,
    IsSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.algebra.updates import ValueClosurePolicy
from repro import errors
from repro.persistence import load_database, save_database

__version__ = "1.0.0"

__all__ = [
    "TseDatabase",
    "ObjectHandle",
    "ViewClassHandle",
    "ViewHandle",
    "Attribute",
    "Method",
    "Derivation",
    "SharedProperty",
    "ROOT_CLASS",
    "And",
    "Compare",
    "IsIn",
    "IsSet",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "ValueClosurePolicy",
    "errors",
    "load_database",
    "save_database",
    "__version__",
]
