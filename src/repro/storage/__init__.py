"""Storage substrate: the GemStone stand-in.

Provides OID allocation, page-simulated slice storage with I/O accounting,
and transactions.  See ``DESIGN.md`` section 5 for the substitution rationale.
"""

from repro.storage.oid import OID_SIZE_BYTES, POINTER_SIZE_BYTES, Oid, OidAllocator
from repro.storage.pages import (
    DEFAULT_CACHE_PAGES,
    DEFAULT_SLOTS_PER_PAGE,
    Page,
    PageManager,
    PageStats,
)
from repro.storage.store import ObjectStore
from repro.storage.transactions import (
    LockMode,
    Transaction,
    TransactionManager,
    TxStatus,
)
from repro.storage.wal import (
    CrashInjector,
    SimulatedCrash,
    WalManager,
    WriteAheadLog,
    recover_database,
)

__all__ = [
    "OID_SIZE_BYTES",
    "POINTER_SIZE_BYTES",
    "Oid",
    "OidAllocator",
    "DEFAULT_CACHE_PAGES",
    "DEFAULT_SLOTS_PER_PAGE",
    "Page",
    "PageManager",
    "PageStats",
    "ObjectStore",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "TxStatus",
    "CrashInjector",
    "SimulatedCrash",
    "WalManager",
    "WriteAheadLog",
    "recover_database",
]
