"""Transactions over the object store.

GemStone provided TSE with concurrency control (section 5).  We reproduce the
minimum a multi-session reproduction needs: strict two-phase locking at
slice granularity with an undo journal, giving atomic commit/abort.  The TSE
layer wraps every schema-change pipeline in a transaction so that a failure
midway (e.g. a rejected algebra statement) rolls the database back to a
consistent state — exercised by the failure-injection tests.

Locks are per-transaction-manager and the lock table itself is guarded by a
mutex, so transactions issued from different threads (the
``repro.concurrency`` session layer) arbitrate correctly:

* transaction-id allocation is atomic — two concurrent ``begin()`` calls can
  never mint the same id (which would alias their lock ownership);
* lock acquisition is re-entrant for a transaction that already holds the
  slice, including the SHARED→EXCLUSIVE *upgrade* when it is the sole
  holder — previously the holder check and the table mutation were separate
  steps, so a concurrent reader slipping in between them turned a legal
  sole-holder upgrade into a spurious :class:`~repro.errors.LockConflict`
  (or, worse, left an EXCLUSIVE entry with two holders);
* conflicts are detected and raised while the mutex is held, so the error
  reflects a real, not a torn, table state.

Conflicts fail fast (no blocking waits): the schema latch in
``repro.concurrency.latch`` is the blocking primitive; slice locks only
arbitrate overlapping logical units of work.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import LockConflict, TransactionStateError
from repro.obs.tracing import Tracer
from repro.storage.oid import Oid
from repro.storage.store import ObjectStore


class TxStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _UndoEntry:
    """A closure that reverses one store mutation."""

    description: str
    undo: Callable[[], None]


class Transaction:
    """One atomic unit of work against an :class:`ObjectStore`.

    Obtain instances from :meth:`TransactionManager.begin`.  All mutations
    must go through the transaction's methods (``create_slice``,
    ``put_value`` ...) for the undo journal to cover them.
    """

    def __init__(self, manager: "TransactionManager", tx_id: int) -> None:
        self._manager = manager
        self._store = manager.store
        self.tx_id = tx_id
        self.status = TxStatus.ACTIVE
        self._journal: List[_UndoEntry] = []
        self._locks: Set[Oid] = set()

    # -- state guards -----------------------------------------------------

    def _require_active(self) -> None:
        if self.status is not TxStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.tx_id} is {self.status.value}, not active"
            )

    # -- locking ------------------------------------------------------------

    def _lock(self, slice_id: Oid, mode: LockMode) -> None:
        self._manager._acquire(self, slice_id, mode)
        self._locks.add(slice_id)

    # -- journalled store operations ----------------------------------------

    def create_slice(self, cluster_key: str, values: Optional[dict] = None) -> Oid:
        """Create a slice; it is dropped again if the transaction aborts."""
        self._require_active()
        slice_id = self._store.create_slice(cluster_key, values)
        self._lock(slice_id, LockMode.EXCLUSIVE)
        self._journal.append(
            _UndoEntry(
                f"drop created slice {slice_id}",
                lambda sid=slice_id: self._store.drop_slice(sid),
            )
        )
        return slice_id

    def get_value(self, slice_id: Oid, key: str, default: object = None) -> object:
        self._require_active()
        self._lock(slice_id, LockMode.SHARED)
        return self._store.get_value(slice_id, key, default)

    def put_value(self, slice_id: Oid, key: str, value: object) -> None:
        self._require_active()
        self._lock(slice_id, LockMode.EXCLUSIVE)
        had_value = self._store.has_value(slice_id, key)
        old = self._store.get_value(slice_id, key) if had_value else None

        def undo(sid=slice_id, k=key, existed=had_value, previous=old) -> None:
            if existed:
                self._store.put_value(sid, k, previous)
            else:
                self._store.remove_value(sid, k)

        self._journal.append(_UndoEntry(f"restore {key} of {slice_id}", undo))
        self._store.put_value(slice_id, key, value)

    def drop_slice(self, slice_id: Oid) -> None:
        self._require_active()
        self._lock(slice_id, LockMode.EXCLUSIVE)
        cluster_key = self._store.cluster_key_of(slice_id)
        values = self._store.read_slice(slice_id)

        def undo(key=cluster_key, payload=values) -> None:
            # The slice is recreated with a *new* id on undo; callers that
            # need id-stable aborts should not drop slices mid-transaction.
            self._store.create_slice(key, payload)

        self._journal.append(_UndoEntry(f"recreate dropped slice {slice_id}", undo))
        self._store.drop_slice(slice_id)

    def run_undoable(self, description: str, do: Callable[[], None],
                     undo: Callable[[], None]) -> None:
        """Run an arbitrary mutation with a caller-supplied compensator.

        Higher layers (schema mutations, view registration) use this to bring
        non-store state under the same atomicity umbrella.
        """
        self._require_active()
        do()
        self._journal.append(_UndoEntry(description, undo))

    # -- outcome -----------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        with self._manager.tracer.span(
            "commit", tx_id=self.tx_id, locks=len(self._locks)
        ):
            # WAL discipline: the log is flushed durably *before* the commit
            # becomes visible (locks released); an abort never touches disk
            if self._manager.wal is not None:
                self._manager.wal.flush()
            self._journal.clear()
            self.status = TxStatus.COMMITTED
            self._manager._release_all(self)
        self._manager.commits += 1

    def abort(self) -> None:
        self._require_active()
        with self._manager.tracer.span(
            "abort", tx_id=self.tx_id, undo_entries=len(self._journal)
        ):
            for entry in reversed(self._journal):
                entry.undo()
            self._journal.clear()
            self.status = TxStatus.ABORTED
            self._manager._release_all(self)
        self._manager.aborts += 1

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status is TxStatus.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Issues transactions and arbitrates slice locks between them."""

    def __init__(self, store: ObjectStore, tracer: Optional[Tracer] = None) -> None:
        self.store = store
        self.tracer = tracer if tracer is not None else Tracer()
        self._next_tx_id = 1
        self._lock_table: Dict[Oid, Tuple[LockMode, Set[int]]] = {}
        #: guards tx-id allocation and every lock-table read-modify-write;
        #: re-entrant so tracing/metrics callbacks can consult the table
        self._mutex = threading.RLock()
        #: lifetime outcome counters, surfaced via ``Database.stats()``
        self.commits = 0
        self.aborts = 0
        #: optional :class:`repro.storage.wal.WalManager`; when attached,
        #: :meth:`Transaction.commit` flushes the log before the commit
        #: becomes visible (write-ahead discipline)
        self.wal = None

    def begin(self) -> Transaction:
        with self._mutex:
            tx = Transaction(self, self._next_tx_id)
            self._next_tx_id += 1
        return tx

    # -- lock table ---------------------------------------------------------

    def _acquire(self, tx: Transaction, slice_id: Oid, mode: LockMode) -> None:
        with self._mutex:
            entry = self._lock_table.get(slice_id)
            if entry is None:
                self._lock_table[slice_id] = (mode, {tx.tx_id})
                return
            held_mode, holders = entry
            if tx.tx_id in holders:
                if len(holders) == 1:
                    # re-entrant by the sole holder: same-mode re-acquire,
                    # EXCLUSIVE→SHARED (covered), SHARED→EXCLUSIVE upgrade
                    if mode is LockMode.EXCLUSIVE and held_mode is LockMode.SHARED:
                        self._lock_table[slice_id] = (LockMode.EXCLUSIVE, holders)
                    return
                if mode is LockMode.SHARED:
                    return  # already a co-holder of the shared lock
                raise LockConflict(
                    f"transaction {tx.tx_id} cannot upgrade to exclusive on "
                    f"{slice_id}: shared with {sorted(holders - {tx.tx_id})}"
                )
            if mode is LockMode.SHARED and held_mode is LockMode.SHARED:
                holders.add(tx.tx_id)
                return
            raise LockConflict(
                f"transaction {tx.tx_id} cannot take {mode.value} lock on "
                f"{slice_id}: held {held_mode.value} by {sorted(holders)}"
            )

    def _release_all(self, tx: Transaction) -> None:
        with self._mutex:
            for slice_id in list(self._lock_table):
                mode, holders = self._lock_table[slice_id]
                holders.discard(tx.tx_id)
                if not holders:
                    del self._lock_table[slice_id]

    @property
    def locked_slice_count(self) -> int:
        with self._mutex:
            return len(self._lock_table)

    def stats_dict(self) -> Dict[str, int]:
        """Outcome counters for the metrics registry's ``transactions`` group."""
        return {
            "committed": self.commits,
            "aborted": self.aborts,
            "locked_slices": self.locked_slice_count,
        }

    def reset_stats(self) -> None:
        self.commits = 0
        self.aborts = 0
