"""Object identifier allocation.

GemStone — the storage platform the paper builds on — hands out immutable
object identifiers (OIDs).  The object-slicing architecture of section 4
needs one OID for the *conceptual* object plus one OID per *implementation*
object, so OID consumption itself is a measured quantity in Table 1
(``#oids for one object``: ``1 + N_impl`` for slicing versus ``1`` for the
intersection-class architecture).  This module provides the allocator and a
tiny value type so that the benchmarks can count and size OIDs faithfully.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

#: Size of one OID in bytes, used by the Table 1 storage accounting.  GemStone
#: used 32-bit OOPs; we keep the same figure so the paper's formulas
#: ``(1 + N_impl) * sizeOf(oid)`` produce comparable magnitudes.
OID_SIZE_BYTES = 4

#: Size of one intra-object pointer in bytes (the links between conceptual and
#: implementation objects cost ``2 * N_impl * sizeOf(pointer)`` per object).
POINTER_SIZE_BYTES = 4


class Oid:
    """An immutable object identifier.

    OIDs compare and hash by value, never by identity, because the whole
    point of an OID is stable identity across transactions and processes.
    Hand-written rather than a frozen dataclass: OIDs key every extent
    set and slice table in the system, so the hash is computed once at
    construction instead of on every dict/set operation.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: int) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(value))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Oid is immutable (tried to set {name!r})")

    def __reduce__(self):
        # copy/deepcopy/pickle re-enter __init__ instead of poking slots
        # (plain slot restoration would trip the immutability guard)
        return (Oid, (self.value,))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Oid) and other.value == self.value

    def __lt__(self, other: "Oid"):
        if not isinstance(other, Oid):
            return NotImplemented
        return self.value < other.value

    def __le__(self, other: "Oid"):
        if not isinstance(other, Oid):
            return NotImplemented
        return self.value <= other.value

    def __gt__(self, other: "Oid"):
        if not isinstance(other, Oid):
            return NotImplemented
        return self.value > other.value

    def __ge__(self, other: "Oid"):
        if not isinstance(other, Oid):
            return NotImplemented
        return self.value >= other.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"oid:{self.value}"


@dataclass
class OidAllocator:
    """Monotonically increasing OID source.

    The allocator also keeps a running count so Table 1's ``#oids`` column can
    be read off directly after a workload, and supports snapshot/restore so
    the store can persist its state.

    Allocation is atomic: the increment of ``_next``/``_allocated`` happens
    under a mutex, so concurrent creates from different sessions can never
    mint the same OID (which would silently corrupt the Table 1 ``#oids``
    accounting and alias two objects' identities).  ``fast_forward`` and
    ``snapshot`` take the same mutex so a WAL watermark or checkpoint never
    observes a half-applied increment.
    """

    _next: int = 1
    _allocated: int = 0
    _mutex: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def allocate(self) -> Oid:
        """Return a fresh, never-before-issued OID."""
        with self._mutex:
            oid = Oid(self._next)
            self._next += 1
            self._allocated += 1
        return oid

    def allocate_many(self, count: int) -> Iterator[Oid]:
        """Yield ``count`` fresh OIDs."""
        for _ in range(count):
            yield self.allocate()

    @property
    def allocated_count(self) -> int:
        """Number of OIDs handed out over the allocator's lifetime."""
        return self._allocated

    @property
    def next_value(self) -> int:
        """The integer the next allocated OID will carry.

        Log replay records this watermark per allocating operation so that
        operations which consumed OIDs without leaving state (a rejected
        ``create``, a rolled-back savepoint) do not desynchronise OID
        assignment between the original run and its replay.
        """
        return self._next

    def fast_forward(self, next_value: int) -> None:
        """Advance the allocator so the next OID carries ``next_value``.

        Only forward movement is allowed — OIDs are never reissued.
        """
        with self._mutex:
            if next_value < self._next:
                raise ValueError(
                    f"cannot rewind OID allocator from {self._next} to {next_value}"
                )
            while self._next < next_value:
                self._next += 1
                self._allocated += 1

    def snapshot(self) -> dict:
        """Return a JSON-serialisable snapshot of the allocator state."""
        with self._mutex:
            return {"next": self._next, "allocated": self._allocated}

    @classmethod
    def from_snapshot(cls, state: dict) -> "OidAllocator":
        """Rebuild an allocator from :meth:`snapshot` output."""
        return cls(_next=int(state["next"]), _allocated=int(state["allocated"]))
