"""The object store: slices, clustering, and snapshots.

This is our stand-in for GemStone 3.2 (section 5 of the paper).  TSE needs
from its platform exactly four things, all provided here:

* **OID allocation** for conceptual and implementation objects;
* **persistent slice storage** — a *slice* is the per-class chunk of state
  that the object-slicing architecture attaches to a conceptual object;
* **clustering** of same-class slices onto shared pages, with page-level
  access accounting so Table 1's cost model can be measured;
* **snapshot persistence** so a database can be saved and reloaded.

The store knows nothing about schemas or views; it stores flat dictionaries
keyed by slice id.  Higher layers (``repro.objectmodel``) give slices their
meaning.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SliceNotFound, StorageError
from repro.storage.oid import Oid, OidAllocator
from repro.storage.pages import DEFAULT_CACHE_PAGES, DEFAULT_SLOTS_PER_PAGE, PageManager


@dataclass
class SliceRecord:
    """Bookkeeping for one stored slice."""

    slice_id: Oid
    cluster_key: str
    page_id: int
    slot: int


class ObjectStore:
    """Flat slice storage with class-keyed clustering.

    A slice is addressed by an :class:`~repro.storage.oid.Oid` and holds a
    ``dict`` of attribute values.  All reads and writes are routed through the
    page manager so the benchmarks can observe simulated I/O.
    """

    def __init__(
        self,
        slots_per_page: int = DEFAULT_SLOTS_PER_PAGE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        self._oids = OidAllocator()
        self._pages = PageManager(slots_per_page=slots_per_page, cache_pages=cache_pages)
        self._slices: Dict[Oid, SliceRecord] = {}
        self._by_key: Dict[str, List[Oid]] = {}
        #: guards slice-table bookkeeping (create/drop) and the snapshot
        #: restore swap; value reads go straight to the page manager — the
        #: session layer's epoch snapshots isolate readers from writers
        self._mutex = threading.RLock()

    # -- OIDs ----------------------------------------------------------------

    def allocate_oid(self) -> Oid:
        """Hand out a fresh OID (also used for conceptual objects, which own
        an OID but no storage of their own)."""
        return self._oids.allocate()

    @property
    def oids_allocated(self) -> int:
        return self._oids.allocated_count

    @property
    def oid_next(self) -> int:
        """The value the next allocated OID will carry (WAL watermark)."""
        return self._oids.next_value

    def fast_forward_oids(self, next_value: int) -> None:
        """Advance OID allocation to ``next_value`` (log replay only)."""
        self._oids.fast_forward(next_value)

    # -- slices ----------------------------------------------------------------

    def create_slice(self, cluster_key: str, values: Optional[dict] = None) -> Oid:
        """Create a new slice clustered under ``cluster_key``.

        Returns the slice's OID.  ``values`` seeds the slice contents.
        """
        slice_id = self._oids.allocate()
        payload = dict(values) if values else {}
        with self._mutex:
            page_id, slot = self._pages.place(cluster_key, payload)
            record = SliceRecord(slice_id, cluster_key, page_id, slot)
            self._slices[slice_id] = record
            self._by_key.setdefault(cluster_key, []).append(slice_id)
        return slice_id

    def _record(self, slice_id: Oid) -> SliceRecord:
        try:
            return self._slices[slice_id]
        except KeyError:
            raise SliceNotFound(f"no slice with id {slice_id}") from None

    def read_slice(self, slice_id: Oid) -> dict:
        """Return a copy of the slice's value dictionary (one page read)."""
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        return dict(payload)  # copies protect page contents from aliasing

    def get_value(self, slice_id: Oid, key: str, default: object = None) -> object:
        """Read one attribute value from a slice."""
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        return payload.get(key, default)

    def has_value(self, slice_id: Oid, key: str) -> bool:
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        return key in payload

    def put_value(self, slice_id: Oid, key: str, value: object) -> None:
        """Write one attribute value into a slice."""
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        payload = dict(payload)
        payload[key] = value
        self._pages.write(record.page_id, record.slot, payload)

    def remove_value(self, slice_id: Oid, key: str) -> None:
        """Delete one attribute value from a slice (no-op if absent)."""
        record = self._record(slice_id)
        payload = dict(self._pages.read(record.page_id, record.slot))
        payload.pop(key, None)
        self._pages.write(record.page_id, record.slot, payload)

    def drop_slice(self, slice_id: Oid) -> None:
        """Destroy a slice and free its slot."""
        with self._mutex:
            record = self._record(slice_id)
            self._pages.delete(record.page_id, record.slot)
            del self._slices[slice_id]
            bucket = self._by_key.get(record.cluster_key)
            if bucket is not None:
                try:
                    bucket.remove(slice_id)
                except ValueError:
                    pass

    def slice_exists(self, slice_id: Oid) -> bool:
        return slice_id in self._slices

    def cluster_key_of(self, slice_id: Oid) -> str:
        return self._record(slice_id).cluster_key

    # -- scans ------------------------------------------------------------------

    def scan_cluster(self, cluster_key: str) -> Iterator[Tuple[Oid, dict]]:
        """Iterate ``(slice_id, values)`` over all slices of a cluster.

        Reads are charged through the page manager, so a scan over a densely
        clustered class costs roughly ``ceil(n / slots_per_page)`` page reads
        — the behaviour Table 1 credits to the object-slicing architecture.
        """
        for slice_id in list(self._by_key.get(cluster_key, ())):
            yield slice_id, self.read_slice(slice_id)

    def cluster_sizes(self) -> Dict[str, int]:
        """Live slice count per cluster key."""
        return {key: len(ids) for key, ids in self._by_key.items() if ids}

    # -- statistics ----------------------------------------------------------------

    @property
    def stats(self):
        """Page-level access statistics (reads/writes/hits/pages)."""
        return self._pages.stats

    def reset_stats(self) -> None:
        self._pages.stats.reset()

    def drop_cache(self) -> None:
        self._pages.drop_cache()

    @property
    def live_slice_count(self) -> int:
        return len(self._slices)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Return a JSON-serialisable snapshot of all live slices.

        Only JSON-representable attribute values survive a snapshot; this is
        adequate for the workloads in this repository (numbers, strings,
        OID references stored as ints).
        """
        slices = []
        for slice_id, record in sorted(self._slices.items()):
            payload = self._pages.read(record.page_id, record.slot)
            slices.append(
                {
                    "slice_id": slice_id.value,
                    "cluster_key": record.cluster_key,
                    "values": _encode_values(payload),
                }
            )
        return {"oids": self._oids.snapshot(), "slices": slices}

    @classmethod
    def from_snapshot(
        cls,
        state: dict,
        slots_per_page: int = DEFAULT_SLOTS_PER_PAGE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> "ObjectStore":
        """Rebuild a store from :meth:`snapshot` output."""
        store = cls(slots_per_page=slots_per_page, cache_pages=cache_pages)
        store._oids = OidAllocator.from_snapshot(state["oids"])
        for entry in state["slices"]:
            slice_id = Oid(int(entry["slice_id"]))
            key = entry["cluster_key"]
            payload = _decode_values(entry["values"])
            page_id, slot = store._pages.place(key, payload)
            store._slices[slice_id] = SliceRecord(slice_id, key, page_id, slot)
            store._by_key.setdefault(key, []).append(slice_id)
        return store

    def restore_snapshot(self, state: dict) -> None:
        """Restore the store *in place* from :meth:`snapshot` output.

        In-place restoration keeps every component that holds a reference to
        this store (pool, transactions, indexes) valid — the foundation of
        database-level savepoints.
        """
        fresh = ObjectStore.from_snapshot(state)
        # swap all four structures in one critical section so a concurrent
        # slice create/drop never interleaves with a half-restored store
        with self._mutex:
            self._oids = fresh._oids
            self._pages = fresh._pages
            self._slices = fresh._slices
            self._by_key = fresh._by_key

    def save(self, path: "Path | str") -> None:
        """Persist the store to a JSON file."""
        Path(path).write_text(json.dumps(self.snapshot(), indent=1))

    @classmethod
    def load(cls, path: "Path | str") -> "ObjectStore":
        """Load a store previously written by :meth:`save`."""
        return cls.from_snapshot(json.loads(Path(path).read_text()))


def _encode_values(payload: dict) -> dict:
    """Encode a slice payload for JSON, tagging OID-valued attributes."""
    encoded = {}
    for key, value in payload.items():
        if isinstance(value, Oid):
            encoded[key] = {"__oid__": value.value}
        else:
            encoded[key] = value
    return encoded


def _decode_values(payload: dict) -> dict:
    """Inverse of :func:`_encode_values`."""
    decoded = {}
    for key, value in payload.items():
        if isinstance(value, dict) and set(value) == {"__oid__"}:
            decoded[key] = Oid(int(value["__oid__"]))
        else:
            decoded[key] = value
    return decoded
