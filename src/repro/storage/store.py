"""The object store: slices, clustering, and snapshots.

This is our stand-in for GemStone 3.2 (section 5 of the paper).  TSE needs
from its platform exactly four things, all provided here:

* **OID allocation** for conceptual and implementation objects;
* **persistent slice storage** — a *slice* is the per-class chunk of state
  that the object-slicing architecture attaches to a conceptual object;
* **clustering** of same-class slices onto shared pages, with page-level
  access accounting so Table 1's cost model can be measured;
* **snapshot persistence** so a database can be saved and reloaded.

The store knows nothing about schemas or views; it stores flat slotted
payloads keyed by slice id — attribute names are interned once per cluster
(class) in an :class:`AttributeTable` and each slice is a plain list indexed
by interned position.  The external interface still speaks dictionaries
(``read_slice``/``create_slice``/snapshots), so higher layers
(``repro.objectmodel``) and the persistence format are unchanged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import SliceNotFound, StorageError
from repro.storage.oid import Oid, OidAllocator
from repro.storage.pages import DEFAULT_CACHE_PAGES, DEFAULT_SLOTS_PER_PAGE, PageManager


#: slot marker for "attribute not present in this slice" — distinguishes a
#: stored ``None`` from an absent value in slotted payloads
_ABSENT = object()


@dataclass(slots=True)
class SliceRecord:
    """Bookkeeping for one stored slice."""

    slice_id: Oid
    cluster_key: str
    page_id: int
    slot: int


class AttributeTable:
    """Interned attribute names for one cluster key.

    All slices of a cluster (= class) share one name table; each slice
    payload is then a plain list indexed by the interned position, with
    :data:`_ABSENT` holes.  Attribute names are stored once per *class*
    instead of once per *object*, and a value read is a list index instead
    of a string-keyed dict probe.  Positions are append-only — dropping a
    slice never renumbers survivors.
    """

    __slots__ = ("index", "names")

    def __init__(self) -> None:
        self.index: Dict[str, int] = {}
        self.names: List[str] = []

    def intern(self, name: str) -> int:
        pos = self.index.get(name)
        if pos is None:
            pos = self.index[name] = len(self.names)
            self.names.append(name)
        return pos


class ObjectStore:
    """Flat slice storage with class-keyed clustering.

    A slice is addressed by an :class:`~repro.storage.oid.Oid` and holds its
    attribute values in a slotted list (see :class:`AttributeTable`).  All
    reads and writes are routed through the page manager so the benchmarks
    can observe simulated I/O.
    """

    def __init__(
        self,
        slots_per_page: int = DEFAULT_SLOTS_PER_PAGE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        self._oids = OidAllocator()
        self._pages = PageManager(slots_per_page=slots_per_page, cache_pages=cache_pages)
        self._slices: Dict[Oid, SliceRecord] = {}
        self._by_key: Dict[str, List[Oid]] = {}
        self._attrs: Dict[str, AttributeTable] = {}
        #: guards slice-table bookkeeping (create/drop) and the snapshot
        #: restore swap; value reads go straight to the page manager — the
        #: session layer's epoch snapshots isolate readers from writers
        self._mutex = threading.RLock()

    # -- OIDs ----------------------------------------------------------------

    def allocate_oid(self) -> Oid:
        """Hand out a fresh OID (also used for conceptual objects, which own
        an OID but no storage of their own)."""
        return self._oids.allocate()

    @property
    def oids_allocated(self) -> int:
        return self._oids.allocated_count

    @property
    def oid_next(self) -> int:
        """The value the next allocated OID will carry (WAL watermark)."""
        return self._oids.next_value

    def fast_forward_oids(self, next_value: int) -> None:
        """Advance OID allocation to ``next_value`` (log replay only)."""
        self._oids.fast_forward(next_value)

    # -- slices ----------------------------------------------------------------

    def _table(self, cluster_key: str) -> AttributeTable:
        table = self._attrs.get(cluster_key)
        if table is None:
            table = self._attrs[cluster_key] = AttributeTable()
        return table

    def create_slice(self, cluster_key: str, values: Optional[dict] = None) -> Oid:
        """Create a new slice clustered under ``cluster_key``.

        Returns the slice's OID.  ``values`` seeds the slice contents.
        """
        slice_id = self._oids.allocate()
        with self._mutex:
            table = self._table(cluster_key)
            payload: List[object] = []
            if values:
                for key, value in values.items():
                    pos = table.intern(key)
                    if pos >= len(payload):
                        payload.extend([_ABSENT] * (pos + 1 - len(payload)))
                    payload[pos] = value
            page_id, slot = self._pages.place(cluster_key, payload)
            record = SliceRecord(slice_id, cluster_key, page_id, slot)
            self._slices[slice_id] = record
            self._by_key.setdefault(cluster_key, []).append(slice_id)
        return slice_id

    def _record(self, slice_id: Oid) -> SliceRecord:
        try:
            return self._slices[slice_id]
        except KeyError:
            raise SliceNotFound(f"no slice with id {slice_id}") from None

    def read_slice(self, slice_id: Oid) -> dict:
        """Return the slice's values as a fresh dictionary (one page read)."""
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        names = self._attrs[record.cluster_key].names
        return {
            names[pos]: value
            for pos, value in enumerate(payload)
            if value is not _ABSENT
        }

    def get_value(self, slice_id: Oid, key: str, default: object = None) -> object:
        """Read one attribute value from a slice (one page read, one index)."""
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        pos = self._attrs[record.cluster_key].index.get(key)
        if pos is None or pos >= len(payload):
            return default
        value = payload[pos]
        return default if value is _ABSENT else value

    def value_reader(self, cluster_key: str, key: str, default: object = None):
        """A pre-bound single-attribute reader: ``fn(slice_id) -> value``.

        Equivalent to :meth:`get_value` for slices of ``cluster_key`` but
        with the record table, page manager, and attribute table resolved
        once at plan time instead of per read — the extent evaluator calls
        this thousands of times per select scan.  Page accounting is
        identical to :meth:`get_value` (every call is still one page read).
        """
        self._table(cluster_key)  # ensure the attribute table exists

        def read(slice_id: Oid, _store=self) -> object:
            # one attribute hop per structure instead of binding the dicts:
            # restore_snapshot swaps _slices/_pages/_attrs wholesale, and a
            # reader must follow the swap (savepoint rollbacks depend on it)
            try:
                record = _store._slices[slice_id]
            except KeyError:
                raise SliceNotFound(f"no slice with id {slice_id}") from None
            payload = _store._pages.read(record.page_id, record.slot)
            pos = _store._attrs[cluster_key].index.get(key)
            if pos is None or pos >= len(payload):
                return default
            value = payload[pos]
            return default if value is _ABSENT else value

        return read

    def has_value(self, slice_id: Oid, key: str) -> bool:
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        pos = self._attrs[record.cluster_key].index.get(key)
        return pos is not None and pos < len(payload) and payload[pos] is not _ABSENT

    def put_value(self, slice_id: Oid, key: str, value: object) -> None:
        """Write one attribute value into a slice.

        The slotted payload is updated in place — no per-write dict copy;
        aliasing is safe because :meth:`read_slice` hands out fresh dicts,
        never the stored list.  A read-modify-write of one slot is a single
        page access, so the page is fetched and charged once (as a write),
        not once per direction.
        """
        record = self._record(slice_id)
        payload = self._pages.modify(record.page_id, record.slot)
        pos = self._attrs[record.cluster_key].intern(key)
        if pos >= len(payload):
            payload.extend([_ABSENT] * (pos + 1 - len(payload)))
        payload[pos] = value

    def remove_value(self, slice_id: Oid, key: str) -> None:
        """Delete one attribute value from a slice (no-op if absent)."""
        record = self._record(slice_id)
        payload = self._pages.read(record.page_id, record.slot)
        pos = self._attrs[record.cluster_key].index.get(key)
        if pos is None or pos >= len(payload):
            return
        payload[pos] = _ABSENT
        self._pages.write(record.page_id, record.slot, payload)

    def drop_slice(self, slice_id: Oid) -> None:
        """Destroy a slice and free its slot."""
        with self._mutex:
            record = self._record(slice_id)
            self._pages.delete(record.page_id, record.slot)
            del self._slices[slice_id]
            bucket = self._by_key.get(record.cluster_key)
            if bucket is not None:
                try:
                    bucket.remove(slice_id)
                except ValueError:
                    pass

    def slice_exists(self, slice_id: Oid) -> bool:
        return slice_id in self._slices

    def cluster_key_of(self, slice_id: Oid) -> str:
        return self._record(slice_id).cluster_key

    # -- scans ------------------------------------------------------------------

    def scan_cluster(self, cluster_key: str) -> Iterator[Tuple[Oid, dict]]:
        """Iterate ``(slice_id, values)`` over all slices of a cluster.

        Reads are charged through the page manager, so a scan over a densely
        clustered class costs roughly ``ceil(n / slots_per_page)`` page reads
        — the behaviour Table 1 credits to the object-slicing architecture.
        """
        for slice_id in list(self._by_key.get(cluster_key, ())):
            yield slice_id, self.read_slice(slice_id)

    def cluster_sizes(self) -> Dict[str, int]:
        """Live slice count per cluster key."""
        return {key: len(ids) for key, ids in self._by_key.items() if ids}

    # -- statistics ----------------------------------------------------------------

    @property
    def stats(self):
        """Page-level access statistics (reads/writes/hits/pages)."""
        return self._pages.stats

    def reset_stats(self) -> None:
        self._pages.stats.reset()

    def drop_cache(self) -> None:
        self._pages.drop_cache()

    @property
    def live_slice_count(self) -> int:
        return len(self._slices)

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Return a JSON-serialisable snapshot of all live slices.

        Only JSON-representable attribute values survive a snapshot; this is
        adequate for the workloads in this repository (numbers, strings,
        OID references stored as ints).
        """
        slices = []
        for slice_id, record in sorted(self._slices.items()):
            payload = self._pages.read(record.page_id, record.slot)
            names = self._attrs[record.cluster_key].names
            values = {
                names[pos]: value
                for pos, value in enumerate(payload)
                if value is not _ABSENT
            }
            slices.append(
                {
                    "slice_id": slice_id.value,
                    "cluster_key": record.cluster_key,
                    "values": _encode_values(values),
                }
            )
        return {"oids": self._oids.snapshot(), "slices": slices}

    @classmethod
    def from_snapshot(
        cls,
        state: dict,
        slots_per_page: int = DEFAULT_SLOTS_PER_PAGE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> "ObjectStore":
        """Rebuild a store from :meth:`snapshot` output."""
        store = cls(slots_per_page=slots_per_page, cache_pages=cache_pages)
        store._oids = OidAllocator.from_snapshot(state["oids"])
        for entry in state["slices"]:
            slice_id = Oid(int(entry["slice_id"]))
            key = entry["cluster_key"]
            values = _decode_values(entry["values"])
            table = store._table(key)
            payload: List[object] = []
            for name, value in values.items():
                pos = table.intern(name)
                if pos >= len(payload):
                    payload.extend([_ABSENT] * (pos + 1 - len(payload)))
                payload[pos] = value
            page_id, slot = store._pages.place(key, payload)
            store._slices[slice_id] = SliceRecord(slice_id, key, page_id, slot)
            store._by_key.setdefault(key, []).append(slice_id)
        return store

    def restore_snapshot(self, state: dict) -> None:
        """Restore the store *in place* from :meth:`snapshot` output.

        In-place restoration keeps every component that holds a reference to
        this store (pool, transactions, indexes) valid — the foundation of
        database-level savepoints.
        """
        fresh = ObjectStore.from_snapshot(state)
        # swap all four structures in one critical section so a concurrent
        # slice create/drop never interleaves with a half-restored store
        with self._mutex:
            self._oids = fresh._oids
            self._pages = fresh._pages
            self._slices = fresh._slices
            self._by_key = fresh._by_key
            self._attrs = fresh._attrs

    def save(self, path: "Path | str") -> None:
        """Persist the store to a JSON file."""
        Path(path).write_text(json.dumps(self.snapshot(), indent=1))

    @classmethod
    def load(cls, path: "Path | str") -> "ObjectStore":
        """Load a store previously written by :meth:`save`."""
        return cls.from_snapshot(json.loads(Path(path).read_text()))


def _encode_values(payload: dict) -> dict:
    """Encode a slice payload for JSON, tagging OID-valued attributes."""
    encoded = {}
    for key, value in payload.items():
        if isinstance(value, Oid):
            encoded[key] = {"__oid__": value.value}
        else:
            encoded[key] = value
    return encoded


def _decode_values(payload: dict) -> dict:
    """Inverse of :func:`_encode_values`."""
    decoded = {}
    for key, value in payload.items():
        if isinstance(value, dict) and set(value) == {"__oid__"}:
            decoded[key] = Oid(int(value["__oid__"]))
        else:
            decoded[key] = value
    return decoded
