"""Simulated page-based storage with access accounting.

The paper's Table 1 argues about page behaviour: object slices of the same
class "tend to cluster" so that attribute-restricted selects touch few pages,
while inherited-attribute access must chase pointers across slices (and hence
across pages).  To make those claims *measurable* rather than rhetorical, the
object store places every slice on a simulated disk page and this module
counts page reads and writes.

The page manager is deliberately simple — fixed slot capacity per page, one
free list per *cluster key* (normally the class name) — because the point is
cost observability, not a real buffer pool.  A small LRU buffer cache is
still provided so that repeated access to a hot page is not charged as a
fresh I/O, mirroring how a real system would behave under the paper's
workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PageError

#: Default number of slices stored per page.  Slices are small (a handful of
#: attribute values), so a 4 KiB page comfortably holds a few dozen.
DEFAULT_SLOTS_PER_PAGE = 32

#: Default number of pages held in the buffer cache.
DEFAULT_CACHE_PAGES = 8


@dataclass
class Page:
    """A fixed-capacity container of slice slots, clustered by key."""

    page_id: int
    cluster_key: str
    capacity: int
    slots: Dict[int, object] = field(default_factory=dict)
    _next_slot: int = 0

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    def insert(self, payload: object) -> int:
        """Place ``payload`` in a fresh slot, returning the slot number."""
        if self.is_full:
            raise PageError(f"page {self.page_id} is full")
        slot = self._next_slot
        self._next_slot += 1
        self.slots[slot] = payload
        return slot

    def read(self, slot: int) -> object:
        if slot not in self.slots:
            raise PageError(f"slot {slot} not present on page {self.page_id}")
        return self.slots[slot]

    def write(self, slot: int, payload: object) -> None:
        if slot not in self.slots:
            raise PageError(f"slot {slot} not present on page {self.page_id}")
        self.slots[slot] = payload

    def delete(self, slot: int) -> None:
        if slot not in self.slots:
            raise PageError(f"slot {slot} not present on page {self.page_id}")
        del self.slots[slot]


@dataclass
class PageStats:
    """Counters exposed to the benchmarks."""

    page_reads: int = 0
    page_writes: int = 0
    cache_hits: int = 0
    pages_allocated: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.cache_hits = 0

    def as_dict(self) -> dict:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "cache_hits": self.cache_hits,
            "pages_allocated": self.pages_allocated,
        }


class PageManager:
    """Allocates pages, routes slice placement, and counts simulated I/O.

    Slices are clustered by ``cluster_key``: consecutive inserts with the same
    key land on the same page until it fills, which reproduces the clustering
    assumption of Table 1 ("slices of the objects of the same attributes tend
    to cluster").
    """

    def __init__(
        self,
        slots_per_page: int = DEFAULT_SLOTS_PER_PAGE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        if slots_per_page < 1:
            raise PageError("slots_per_page must be at least 1")
        self._slots_per_page = slots_per_page
        self._pages: Dict[int, Page] = {}
        self._open_page_by_key: Dict[str, int] = {}
        self._next_page_id = 1
        self._cache: "OrderedDict[int, None]" = OrderedDict()
        self._cache_capacity = cache_pages
        self.stats = PageStats()

    # -- page lifecycle ----------------------------------------------------

    def _allocate_page(self, cluster_key: str) -> Page:
        page = Page(self._next_page_id, cluster_key, self._slots_per_page)
        self._pages[page.page_id] = page
        self._next_page_id += 1
        self.stats.pages_allocated += 1
        return page

    def _open_page(self, cluster_key: str) -> Page:
        """Return the current partially-filled page for ``cluster_key``."""
        page_id = self._open_page_by_key.get(cluster_key)
        if page_id is not None:
            page = self._pages[page_id]
            if not page.is_full:
                return page
        page = self._allocate_page(cluster_key)
        self._open_page_by_key[cluster_key] = page.page_id
        return page

    # -- buffer cache ------------------------------------------------------

    def _touch(self, page_id: int, *, write: bool) -> None:
        """Record one access to ``page_id``, charging I/O on a cache miss."""
        if page_id in self._cache:
            self._cache.move_to_end(page_id)
            self.stats.cache_hits += 1
        else:
            if write:
                self.stats.page_writes += 1
            else:
                self.stats.page_reads += 1
            self._cache[page_id] = None
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        if write and page_id in self._cache:
            # a cached write still dirties the page; count it as a write when
            # it was a hit so write amplification is not hidden entirely.
            pass

    def drop_cache(self) -> None:
        """Empty the buffer cache (used by benchmarks for cold-start runs)."""
        self._cache.clear()

    # -- slice-level interface ----------------------------------------------

    def place(self, cluster_key: str, payload: object) -> Tuple[int, int]:
        """Store ``payload`` clustered by ``cluster_key``.

        Returns the ``(page_id, slot)`` address of the new slice.
        """
        page = self._open_page(cluster_key)
        slot = page.insert(payload)
        self._touch(page.page_id, write=True)
        return page.page_id, slot

    def read(self, page_id: int, slot: int) -> object:
        page = self._page(page_id)
        self._touch(page_id, write=False)
        return page.read(slot)

    def write(self, page_id: int, slot: int, payload: object) -> None:
        page = self._page(page_id)
        page.write(slot, payload)
        self._touch(page_id, write=True)

    def modify(self, page_id: int, slot: int) -> object:
        """Fetch a slot's payload for in-place mutation: one page access,
        charged as a write (a slot update is a read-modify-write of the
        same page, not two independent I/Os)."""
        page = self._page(page_id)
        self._touch(page_id, write=True)
        return page.read(slot)

    def delete(self, page_id: int, slot: int) -> None:
        page = self._page(page_id)
        page.delete(slot)
        self._touch(page_id, write=True)

    def pages_for_key(self, cluster_key: str) -> List[int]:
        """All page ids that hold slices of ``cluster_key`` (live or not)."""
        return [p.page_id for p in self._pages.values() if p.cluster_key == cluster_key]

    def _page(self, page_id: int) -> Page:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageError(f"unknown page id {page_id}") from None

    @property
    def page_count(self) -> int:
        return len(self._pages)
