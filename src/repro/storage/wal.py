"""Crash-consistent durability: write-ahead log, checkpoints, recovery.

The paper runs on GemStone, which gave TSE durable storage for free
(section 5); our previous stand-in was :func:`repro.persistence.save_database`
— a monolithic JSON dump that a crash mid-write destroys together with every
view schema derived from it.  This module completes the substitution with a
conventional logging/snapshot substrate, the same shape recent work puts
under online schema evolution ("Online Schema Evolution is (Almost) Free for
Snapshot Databases", VLDB 2023):

* :class:`WriteAheadLog` — an append-only file of CRC-framed entries.  Each
  entry is ``<length, crc32><json payload>``; a torn tail (short frame or
  CRC mismatch at the end of the file) is detected on replay and truncated,
  so a crash mid-append never poisons the log.

* :class:`WalManager` — the database-facing subsystem.  It journals
  **logical** records: the five generic update operators (``create`` /
  ``delete`` / ``set`` / ``add`` / ``remove``), the schema-change pipeline
  (``schema_begin`` / ``schema_commit`` / ``schema_abort``), ``definevc``,
  and the database-level authoring operations (``define_class``,
  ``create_view``, ``merge_views``, ``rename_class``, ``rename_property``,
  ``vacuum``, ``create_index``).  Records are appended *after* the operation
  succeeds in memory and *flushed before control returns to the caller* —
  the commit point.  Inside a ``db.transaction()`` savepoint, records buffer
  in memory and reach the disk only when the savepoint commits; an abort is
  a no-op on disk.

* **Checkpoints** — :meth:`WalManager.checkpoint` reuses
  :func:`repro.persistence.database_to_dict` for the snapshot body and makes
  it durable with the classic write-temp / ``fsync`` / ``rename`` dance, then
  prunes the log.  The checkpoint carries the log sequence number (LSN) it
  covers, so replay after a crash *between* the rename and the prune skips
  already-absorbed records instead of double-applying them.

* **Recovery** — :func:`recover_database` loads the newest checkpoint (if
  any), replays the surviving log suffix in order, and re-attaches a live
  :class:`WalManager` so the recovered database keeps journaling.  Replay
  drives the ordinary update engine and TSE manager, so derived extents are
  rebuilt through the existing ``IncrementalExtentEvaluator`` delta path and
  view histories through the ordinary pipeline — there is no second
  interpretation of the semantics to drift from.

* :class:`CrashInjector` — deterministic crash points (``wal:mid_append``,
  ``checkpoint:before_rename``, ``checkpoint:after_rename``) used by the
  randomized kill/recover equivalence tests in ``tests/test_wal.py``.

**Determinism.**  Replay re-executes logical operations, so everything they
allocate (conceptual OIDs, implementation OIDs, slice ids) must come out
identically.  Allocation is a monotone counter, and the only way the
original run can consume OIDs without logging anything is an operation that
failed and rolled back (e.g. a value-closure rejection).  Every allocating
record therefore carries the allocator watermark at the time it ran, and
replay fast-forwards the allocator before applying it.

**Coverage.**  Durability covers the public mutation surface —
``TseDatabase`` methods, view/class/object handles, and the command
language, all of which funnel into the journaled seams.  Mutating the
instance pool or the schema directly underneath the facade bypasses the
log, exactly as it bypasses savepoints today.  Method bodies are Python
callables and do not serialise; like :func:`repro.persistence.load_database`,
recovery accepts a *method registry* to rebind them.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import RecoveryError, StorageError
from repro.storage.oid import Oid
from repro.storage.store import _decode_values, _encode_values

__all__ = [
    "CHECKPOINT_NAME",
    "CRASH_POINTS",
    "CrashInjector",
    "LOG_NAME",
    "SimulatedCrash",
    "WalManager",
    "WalRecord",
    "WriteAheadLog",
    "recover_database",
]

#: file names inside a WAL directory
CHECKPOINT_NAME = "checkpoint.json"
LOG_NAME = "wal.log"

#: frame header: little-endian (payload length, crc32 of payload)
_HEADER = struct.Struct("<II")

#: record kinds replay applies (everything else — ``schema_begin`` /
#: ``schema_abort`` / ``migration_step`` — is an audit trail only).
#: ``txn`` is the composite record a committed savepoint writes: its inner
#: records share one CRC frame, so a torn tail drops the whole transaction
#: or none of it.
EFFECTFUL_KINDS = frozenset(
    {
        "create",
        "delete",
        "set",
        "add",
        "remove",
        "define_class",
        "definevc",
        "create_view",
        "merge_views",
        "retire_view",
        "schema_commit",
        "rename_class",
        "rename_property",
        "vacuum",
        "create_index",
        "txn",
    }
)

#: the deterministic crash points the injector understands
CRASH_POINTS = (
    "wal:mid_append",
    "checkpoint:before_rename",
    "checkpoint:after_rename",
)


class SimulatedCrash(RuntimeError):
    """Raised by :class:`CrashInjector` at an armed crash point.

    The in-memory database that was running is to be considered dead; tests
    discard it and call :func:`recover_database` on the WAL directory, which
    is exactly what a process restart would do.
    """


class CrashInjector:
    """Deterministically kills the process-under-test at a durability seam.

    ``CrashInjector("wal:mid_append", at=3)`` crashes the third time an
    append reaches its mid-write point: the frame header plus roughly half
    the payload are on disk (a torn record), then :class:`SimulatedCrash`
    is raised.  ``checkpoint:before_rename`` crashes with the temp snapshot
    written but not yet visible; ``checkpoint:after_rename`` crashes with
    the new checkpoint visible but the log not yet pruned.
    """

    def __init__(self, point: str, at: int = 1) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r} (use one of {CRASH_POINTS})")
        if at < 1:
            raise ValueError("crash occurrence index is 1-based")
        self.point = point
        self.at = at
        self.hits = 0
        self.fired = False

    def fires(self, point: str) -> bool:
        """True exactly when this call is the armed occurrence of ``point``."""
        if self.fired or point != self.point:
            return False
        self.hits += 1
        if self.hits == self.at:
            self.fired = True
            return True
        return False

    def crash(self, point: str) -> None:
        raise SimulatedCrash(point)


class WalRecord:
    """One parsed log entry."""

    __slots__ = ("lsn", "kind", "payload")

    def __init__(self, lsn: int, kind: str, payload: dict) -> None:
        self.lsn = lsn
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<wal {self.lsn} {self.kind}>"


class WriteAheadLog:
    """The append-only file: framing, flushing, torn-tail detection.

    Knows nothing about databases — it moves ``(lsn, kind, payload)``
    triples to and from disk.  ``sync`` policies:

    ``"always"``
        ``fsync`` after every append (a crash loses at most the entry being
        written, which the CRC frame detects);
    ``"flush"``
        flush Python/OS buffers per append, ``fsync`` only at explicit
        barriers (checkpoint, savepoint commit) — the default;
    ``"off"``
        flush per append, never ``fsync`` (benchmarks).

    Appends from different threads serialise behind a dedicated I/O lock so
    frames never interleave on disk.  Durability barriers *group-commit*:
    each append bumps a sequence number, and a barrier only needs the fsync
    that covers its own sequence — when several threads hit the barrier
    together, one of them (the *leader*) performs a single ``fsync`` whose
    coverage the followers simply observe.  ``fsyncs_issued`` therefore
    grows no faster than — and under contention strictly slower than —
    the number of barriers requested (``group_absorbed`` counts the saved
    syncs), which is the entire point of batching the slowest operation in
    the commit path.
    """

    def __init__(
        self,
        path: "Path | str",
        sync: str = "flush",
        crash_injector: Optional[CrashInjector] = None,
    ) -> None:
        if sync not in ("always", "flush", "off"):
            raise ValueError(f"unknown sync policy {sync!r}")
        self.path = Path(path)
        self.sync = sync
        self.injector = crash_injector
        self._file = None
        #: serialises frame writes / truncation / open-close
        self._io_lock = threading.RLock()
        #: group-commit state: appends stamped by _append_seq; _synced_seq
        #: is the highest append a completed fsync is known to cover
        self._sync_cond = threading.Condition()
        self._append_seq = 0
        self._synced_seq = 0
        self._sync_in_flight = False
        #: observability: actual fsyncs vs. barriers satisfied by another
        #: thread's fsync (the group-commit win)
        self.fsyncs_issued = 0
        self.group_absorbed = 0

    # -- writing -----------------------------------------------------------

    def _open(self):
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "ab")
        return self._file

    def append(self, lsn: int, kind: str, payload: dict) -> int:
        """Frame and append one record; returns bytes written."""
        body = json.dumps(
            {"lsn": lsn, "kind": kind, "payload": payload}, separators=(",", ":")
        ).encode("utf-8")
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        with self._io_lock:
            handle = self._open()
            if self.injector is not None and self.injector.fires("wal:mid_append"):
                # a torn write: header plus part of the payload reach the disk
                handle.write(frame[: _HEADER.size + max(1, len(body) // 2)])
                handle.flush()
                self.injector.crash("wal:mid_append")
            handle.write(frame)
            handle.flush()
            with self._sync_cond:
                self._append_seq += 1
                seq = self._append_seq
            if self.sync == "always":
                os.fsync(handle.fileno())
                with self._sync_cond:
                    self.fsyncs_issued += 1
                    self._synced_seq = max(self._synced_seq, seq)
        return len(frame)

    def barrier(self) -> None:
        """Make everything appended so far durable (commit barrier).

        Group commit: if another thread's fsync already covers (or is about
        to cover) our latest append, we wait for it instead of issuing our
        own — N concurrent committers cost one disk sync, not N.
        """
        with self._io_lock:
            if self._file is None:
                return
            self._file.flush()
        if self.sync == "off":
            return
        with self._sync_cond:
            target = self._append_seq
            while self._synced_seq < target and self._sync_in_flight:
                self._sync_cond.wait()
            if self._synced_seq >= target:
                self.group_absorbed += 1  # someone else's fsync covered us
                return
            self._sync_in_flight = True
        try:
            with self._io_lock:
                handle = self._file
                if handle is not None:
                    # everything appended up to *now* rides this fsync
                    with self._sync_cond:
                        covered = self._append_seq
                    handle.flush()
                    os.fsync(handle.fileno())
                else:
                    covered = target
            with self._sync_cond:
                self.fsyncs_issued += 1
                self._synced_seq = max(self._synced_seq, covered)
        finally:
            with self._sync_cond:
                self._sync_in_flight = False
                self._sync_cond.notify_all()

    def reset(self) -> None:
        """Truncate the log to zero length (after a checkpoint absorbed it)."""
        with self._io_lock:
            handle = self._open()
            handle.truncate(0)
            handle.seek(0)
            handle.flush()
            if self.sync != "off":
                os.fsync(handle.fileno())
        with self._sync_cond:
            self._synced_seq = self._append_seq

    def close(self) -> None:
        with self._io_lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -- reading -----------------------------------------------------------

    def read_records(self) -> Tuple[List[WalRecord], int]:
        """Parse the log; returns ``(records, torn_bytes)``.

        A short frame, short payload, CRC mismatch or undecodable body ends
        the scan: everything from that offset on is a torn tail (the bytes a
        crash left behind) and is **truncated in place** so future appends
        start from a clean record boundary.
        """
        if not self.path.exists():
            return [], 0
        data = self.path.read_bytes()
        records: List[WalRecord] = []
        offset = 0
        good = 0
        while offset + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break  # short payload: torn tail
            body = data[start:end]
            if zlib.crc32(body) != crc:
                break  # corrupt/torn entry
            try:
                parsed = json.loads(body)
                records.append(
                    WalRecord(int(parsed["lsn"]), parsed["kind"], parsed["payload"])
                )
            except (ValueError, KeyError, TypeError):
                break
            offset = end
            good = offset
        torn = len(data) - good
        if torn:
            self.close()
            with open(self.path, "r+b") as handle:
                handle.truncate(good)
        return records, torn


class WalManager:
    """The durability subsystem of one :class:`~repro.core.database.TseDatabase`.

    Obtain one via ``db.enable_wal(directory)`` (fresh log) or
    ``TseDatabase.recover(directory)`` (checkpoint + replay).  The manager
    owns the LSN counter, the committed-operation counter (``ops_committed``,
    the unit the crash-equivalence tests reason in), savepoint buffering,
    and the checkpoint protocol.
    """

    def __init__(
        self,
        db,
        directory: "Path | str",
        sync: str = "flush",
        crash_injector: Optional[CrashInjector] = None,
    ) -> None:
        self.db = db
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log = WriteAheadLog(
            self.directory / LOG_NAME, sync=sync, crash_injector=crash_injector
        )
        self.injector = crash_injector
        self.lsn = 0
        #: effectful records made durable over this database's lifetime
        #: (checkpointed + logged); audit records do not count
        self.ops_committed = 0
        #: records replayed into this database by the last recovery
        self.records_replayed = 0
        self.torn_bytes_dropped = 0
        self.last_checkpoint_seconds = 0.0
        self.last_recovery_seconds = 0.0
        self._savepoint_depth = 0
        self._buffer: List[Tuple[str, dict]] = []
        self._replaying = False
        self._metrics = None
        #: serialises LSN assignment + frame append so records from
        #: concurrent sessions get unique, ordered LSNs; re-entrant because
        #: a savepoint commit appends its composite record under the lock
        self._append_lock = threading.RLock()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Hook the journal into every mutation seam of the database."""
        self.db.wal = self
        self.db.engine.journal = self
        self.db.tsem.journal = self
        self.db.transactions.wal = self
        self._register_metrics()

    def _register_metrics(self) -> None:
        metrics = self.db.obs.metrics
        self._metrics = metrics
        metrics.counter("wal_appends", help="WAL records appended")
        metrics.counter("wal_bytes", help="bytes appended to the WAL")
        metrics.counter("wal_flushes", help="WAL durability barriers")
        metrics.counter("wal_checkpoints", help="checkpoints completed")
        metrics.gauge(
            "checkpoint_seconds",
            help="duration of the last checkpoint",
            callback=lambda: self.last_checkpoint_seconds,
        )
        metrics.gauge(
            "recovery_seconds",
            help="duration of the last recovery (0 when never recovered)",
            callback=lambda: self.last_recovery_seconds,
        )
        metrics.gauge(
            "wal_records_replayed",
            help="records replayed by the last recovery",
            callback=lambda: self.records_replayed,
        )
        metrics.register_group("wal", self.stats_dict)

    def stats_dict(self) -> Dict[str, object]:
        """The ``wal`` group of ``Database.stats()`` / ``.wal stats``."""
        return {
            "directory": str(self.directory),
            "lsn": self.lsn,
            "ops_committed": self.ops_committed,
            "records_replayed": self.records_replayed,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "savepoint_depth": self._savepoint_depth,
            "buffered_records": len(self._buffer),
            "log_bytes": (
                self.log.path.stat().st_size if self.log.path.exists() else 0
            ),
            "has_checkpoint": (self.directory / CHECKPOINT_NAME).exists(),
            "sync": self.log.sync,
            "fsyncs_issued": self.log.fsyncs_issued,
            "group_commit_absorbed": self.log.group_absorbed,
        }

    # ------------------------------------------------------------------
    # journaling (called from the instrumented seams)
    # ------------------------------------------------------------------

    def record(self, kind: str, payload: dict) -> None:
        """Journal one logical record (buffered inside a savepoint)."""
        if self._replaying:
            return
        with self._append_lock:
            if self._savepoint_depth > 0:
                self._buffer.append((kind, payload))
                return
            self._append(kind, payload)
        # the durability barrier happens *outside* the append lock so that
        # concurrent committers can share one group-commit fsync
        self.flush()

    def _append(self, kind: str, payload: dict) -> None:
        with self._append_lock:
            self.lsn += 1
            written = self.log.append(self.lsn, kind, payload)
            self.ops_committed += _effectful_count(kind, payload)
        if self._metrics is not None:
            self._metrics.counter("wal_appends").inc()
            self._metrics.counter("wal_bytes").inc(written)
            # per-record-type durability cost: which record kinds dominate
            # the log, in count and in bytes
            self._metrics.counter(
                "wal_appends_by_kind", labels={"record": kind}
            ).inc()
            self._metrics.counter(
                "wal_bytes_by_kind", labels={"record": kind}
            ).inc(written)

    def flush(self) -> None:
        """Commit barrier: records appended so far become durable."""
        self.log.barrier()
        if self._metrics is not None:
            self._metrics.counter("wal_flushes").inc()

    # -- update-engine seam ------------------------------------------------

    def log_create(
        self,
        class_name: str,
        assignments: Mapping[str, object],
        union_target: Optional[str],
        oid: Oid,
        oid_base: int,
    ) -> None:
        self.record(
            "create",
            {
                "class": class_name,
                "assignments": _encode_values(dict(assignments)),
                "union_target": union_target,
                "oid": oid.value,
                "oid_base": oid_base,
            },
        )

    def log_delete(self, oids) -> None:
        self.record("delete", {"oids": [o.value for o in oids]})

    def log_set(
        self,
        class_name: str,
        oids,
        assignments: Mapping[str, object],
        oid_base: int,
    ) -> None:
        self.record(
            "set",
            {
                "class": class_name,
                "oids": [o.value for o in oids],
                "assignments": _encode_values(dict(assignments)),
                "oid_base": oid_base,
            },
        )

    def log_add(self, class_name: str, oids, union_target: Optional[str]) -> None:
        self.record(
            "add",
            {
                "class": class_name,
                "oids": [o.value for o in oids],
                "union_target": union_target,
            },
        )

    def log_remove(self, class_name: str, oids, target: Optional[str]) -> None:
        self.record(
            "remove",
            {
                "class": class_name,
                "oids": [o.value for o in oids],
                "target": target,
            },
        )

    # -- lazy-migration seam (concurrency.migration) -----------------------

    def migration_step(self, epoch_id: int, classes, remaining: int) -> None:
        """Journal one backfill batch: which epoch, which classes, how many
        are still pending.

        Audit-only (not in :data:`EFFECTFUL_KINDS`): replay re-runs the
        schema changes themselves, and the recovered database re-derives
        identical extents whenever they are next captured — so a crash at
        any point of the backfill, including mid-append of this record,
        recovers to a state equivalent to the mid-migration original.
        """
        self.record(
            "migration_step",
            {
                "epoch": epoch_id,
                "classes": list(classes),
                "remaining": remaining,
            },
        )

    # -- schema-change pipeline seam (TSE manager) -------------------------

    def schema_begin(self, view_name: str, operation: str) -> None:
        self.record("schema_begin", {"view": view_name, "operation": operation})

    def schema_commit(self, view_name: str, operation: str, args: dict) -> None:
        self.record(
            "schema_commit",
            {
                "view": view_name,
                "operation": operation,
                "args": {key: _encode_arg(value) for key, value in args.items()},
            },
        )

    def schema_abort(self, view_name: str, operation: str, error: str) -> None:
        self.record(
            "schema_abort",
            {"view": view_name, "operation": operation, "error": error},
        )

    # -- savepoints (db.transaction()) -------------------------------------

    def begin_savepoint(self) -> None:
        with self._append_lock:
            self._savepoint_depth += 1

    def commit_savepoint(self) -> None:
        """Outermost commit makes the buffered records durable atomically.

        The buffer is written as one composite ``txn`` record — a single
        CRC frame — so a crash during the flush either persists the whole
        transaction or (torn tail) none of it; a partial savepoint can
        never replay.
        """
        flush_needed = False
        with self._append_lock:
            if self._savepoint_depth == 0:
                raise StorageError("commit_savepoint without begin_savepoint")
            self._savepoint_depth -= 1
            if self._savepoint_depth == 0 and self._buffer:
                buffered, self._buffer = self._buffer, []
                self._append(
                    "txn",
                    {
                        "records": [
                            {"kind": kind, "payload": payload}
                            for kind, payload in buffered
                        ]
                    },
                )
                flush_needed = True
        if flush_needed:
            self.flush()

    def abort_savepoint(self) -> None:
        """Abort is a no-op on disk: buffered records are dropped."""
        with self._append_lock:
            if self._savepoint_depth == 0:
                raise StorageError("abort_savepoint without begin_savepoint")
            self._savepoint_depth -= 1
            if self._savepoint_depth == 0:
                self._buffer.clear()

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> Path:
        """Snapshot the database atomically and prune the log.

        Protocol: serialise via ``database_to_dict`` into ``checkpoint.tmp``,
        flush + ``fsync``, rename over ``checkpoint.json`` (atomic on POSIX),
        ``fsync`` the directory, then truncate the log.  A crash before the
        rename leaves the old checkpoint + full log; a crash after it leaves
        the new checkpoint + a log whose records replay skips by LSN.
        Under the ``"off"`` sync policy both fsyncs are skipped — the rename
        stays atomic, only power-loss durability is surrendered, which is
        that policy's stated contract (benchmarks and throwaway harnesses).
        """
        from repro.persistence import FORMAT_VERSION, database_to_dict

        if self._savepoint_depth > 0:
            raise StorageError(
                "cannot checkpoint inside an open db.transaction() savepoint"
            )
        start = time.perf_counter()
        target = self.directory / CHECKPOINT_NAME
        tmp = self.directory / (CHECKPOINT_NAME + ".tmp")
        snapshot = {
            "format": FORMAT_VERSION,
            "wal": {"lsn": self.lsn, "ops_committed": self.ops_committed},
            "database": database_to_dict(self.db),
        }
        with open(tmp, "w") as handle:
            json.dump(snapshot, handle, separators=(",", ":"))
            handle.flush()
            if self.log.sync != "off":
                os.fsync(handle.fileno())
        if self.injector is not None and self.injector.fires("checkpoint:before_rename"):
            self.injector.crash("checkpoint:before_rename")
        os.replace(tmp, target)
        if self.log.sync != "off":
            _fsync_directory(self.directory)
        if self.injector is not None and self.injector.fires("checkpoint:after_rename"):
            self.injector.crash("checkpoint:after_rename")
        self.log.reset()
        self.last_checkpoint_seconds = time.perf_counter() - start
        if self._metrics is not None:
            self._metrics.counter("wal_checkpoints").inc()
            self._metrics.timed_observe(
                "durability_seconds", self.last_checkpoint_seconds, op="checkpoint"
            )
        return target

    def close(self) -> None:
        self.log.close()


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------

def recover_database(
    directory: "Path | str",
    methods: Optional[Mapping[str, Callable]] = None,
    sync: str = "flush",
):
    """Rebuild a database from a WAL directory: checkpoint + log replay.

    Returns the recovered :class:`~repro.core.database.TseDatabase` with a
    live :class:`WalManager` re-attached (recovery metrics included in
    ``db.stats()``).  ``methods`` rebinds method bodies, exactly as in
    :func:`repro.persistence.load_database`.
    """
    from repro.core.database import TseDatabase
    from repro.persistence import database_from_dict

    directory = Path(directory)
    start = time.perf_counter()
    checkpoint_path = directory / CHECKPOINT_NAME
    stale_tmp = directory / (CHECKPOINT_NAME + ".tmp")
    if stale_tmp.exists():
        stale_tmp.unlink()  # a crash mid-checkpoint left it; never trusted
    base_lsn = 0
    ops_committed = 0
    if checkpoint_path.exists():
        snapshot = json.loads(checkpoint_path.read_text())
        db = database_from_dict(snapshot["database"], methods=methods)
        base_lsn = int(snapshot["wal"]["lsn"])
        ops_committed = int(snapshot["wal"]["ops_committed"])
    else:
        db = TseDatabase()

    log = WriteAheadLog(directory / LOG_NAME, sync=sync)
    records, torn = log.read_records()
    log.close()
    replayed = 0
    last_lsn = base_lsn
    for record in records:
        last_lsn = max(last_lsn, record.lsn)
        if record.lsn <= base_lsn:
            continue  # absorbed by the checkpoint (crash before log prune)
        if record.kind not in EFFECTFUL_KINDS:
            continue  # audit records: begin without commit, aborts
        if record.kind == "txn":
            # one committed savepoint: apply its inner records in order
            for inner in record.payload["records"]:
                if inner["kind"] not in EFFECTFUL_KINDS:
                    continue
                _apply_record(
                    db, WalRecord(record.lsn, inner["kind"], inner["payload"]), methods
                )
                replayed += 1
                ops_committed += 1
            continue
        _apply_record(db, record, methods)
        replayed += 1
        ops_committed += 1

    manager = WalManager(db, directory, sync=sync)
    manager.lsn = last_lsn
    manager.ops_committed = ops_committed
    manager.records_replayed = replayed
    manager.torn_bytes_dropped = torn
    manager.last_recovery_seconds = time.perf_counter() - start
    manager.attach()
    if manager._metrics is not None:
        manager._metrics.timed_observe(
            "durability_seconds", manager.last_recovery_seconds, op="recover"
        )
    # recovery is a dossier trigger: the flight recorder notes the replay
    # (and dumps a forensic bundle when a dossier directory is configured)
    db.obs.flight.record(
        "recovery",
        directory=str(directory),
        records_replayed=replayed,
        torn_bytes_dropped=torn,
        duration_s=round(manager.last_recovery_seconds, 6),
    )
    return db


def _apply_record(db, record: WalRecord, methods) -> None:
    """Re-execute one logical record against the recovering database."""
    payload = record.payload
    kind = record.kind
    try:
        if kind == "create":
            db.store.fast_forward_oids(int(payload["oid_base"]))
            oid = db.engine.create(
                payload["class"],
                _decode_values(payload["assignments"]),
                union_target=payload.get("union_target"),
            )
            if oid.value != int(payload["oid"]):
                raise RecoveryError(
                    f"replayed create yielded {oid}, log recorded "
                    f"oid:{payload['oid']} (lsn {record.lsn})"
                )
        elif kind == "delete":
            db.engine.delete([Oid(int(v)) for v in payload["oids"]])
        elif kind == "set":
            db.store.fast_forward_oids(int(payload["oid_base"]))
            db.engine.set_values(
                [Oid(int(v)) for v in payload["oids"]],
                payload["class"],
                _decode_values(payload["assignments"]),
            )
        elif kind == "add":
            db.engine.add(
                [Oid(int(v)) for v in payload["oids"]],
                payload["class"],
                union_target=payload.get("union_target"),
            )
        elif kind == "remove":
            db.engine.remove(
                [Oid(int(v)) for v in payload["oids"]],
                payload["class"],
                target=payload.get("target"),
            )
        elif kind == "define_class":
            from repro.persistence import property_from_dict

            db.define_class(
                payload["name"],
                [
                    property_from_dict(p, payload["name"], methods)
                    for p in payload["properties"]
                ],
                inherits_from=tuple(payload["inherits_from"]),
            )
        elif kind == "definevc":
            from repro.persistence import derivation_from_dict

            db.define_virtual_class(
                payload["name"],
                derivation_from_dict(payload["derivation"], payload["name"], methods),
            )
        elif kind == "create_view":
            db.create_view(
                payload["name"],
                payload["classes"],
                renames=payload.get("renames") or None,
                closure=payload.get("closure", "complete"),
            )
        elif kind == "merge_views":
            db.merge_views(
                payload["first"],
                payload["second"],
                payload["into"],
                first_version=payload.get("first_version"),
                second_version=payload.get("second_version"),
            )
        elif kind == "retire_view":
            db.retire_view_version(payload["view"], payload["version"])
        elif kind == "schema_commit":
            args = {
                key: _decode_arg(value, payload, methods)
                for key, value in payload["args"].items()
            }
            getattr(db.tsem, payload["operation"])(payload["view"], **args)
        elif kind == "rename_class":
            db.view(payload["view"]).rename_class(payload["old"], payload["new"])
        elif kind == "rename_property":
            db.view(payload["view"]).rename_property(
                payload["class"], payload["old"], payload["new"]
            )
        elif kind == "vacuum":
            db.vacuum()
        elif kind == "create_index":
            db.create_index(payload["class"], payload["attribute"])
        else:  # pragma: no cover - EFFECTFUL_KINDS guards the dispatch
            raise RecoveryError(f"unknown record kind {kind!r}")
    except RecoveryError:
        raise
    except Exception as exc:
        raise RecoveryError(
            f"replay of lsn {record.lsn} ({kind}) failed: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# argument (de)serialisation for schema_commit records
# ---------------------------------------------------------------------------

def _encode_arg(value):
    """JSON-encode one TSE-manager argument (properties tagged by type)."""
    from repro.schema.properties import Property

    if isinstance(value, Property):
        from repro.persistence import property_to_dict

        return {"__property__": property_to_dict(value)}
    if isinstance(value, Oid):
        return {"__oid__": value.value}
    return value


def _decode_arg(value, payload: dict, methods):
    if isinstance(value, dict) and set(value) == {"__property__"}:
        from repro.persistence import property_from_dict

        owner = payload["args"].get("to") or payload.get("view", "")
        if isinstance(owner, dict):  # pragma: no cover - defensive
            owner = ""
        return property_from_dict(value["__property__"], owner, methods)
    if isinstance(value, dict) and set(value) == {"__oid__"}:
        return Oid(int(value["__oid__"]))
    return value


def _effectful_count(kind: str, payload: dict) -> int:
    """How many committed operations a record represents (``txn`` counts
    its effectful inner records; audit records count zero)."""
    if kind == "txn":
        return sum(
            1 for r in payload["records"] if r["kind"] in EFFECTFUL_KINDS
        )
    return 1 if kind in EFFECTFUL_KINDS else 0


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable by fsyncing the containing directory."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
