"""Predicate expressions for the ``select`` algebra operator.

MultiView's ``select from <class> where <predicate>`` needs a predicate
language over attribute values.  We provide a small, explicitly-constructed
AST — comparisons, boolean connectives and membership tests — that evaluates
against an *attribute reader* (a callable mapping attribute name to value in
the context of one object and one class).  Every node carries a stable
``signature()`` so that two textually identical predicates compare equal,
which duplicate-class detection relies on, and a ``to_dict``/``from_dict``
pair for snapshot persistence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Tuple, Type

from repro.errors import PredicateError

#: An attribute reader: maps attribute name -> value for one object.
Reader = Callable[[str], object]


class Predicate:
    """Base class of all predicate nodes."""

    def matches(self, reader: Reader) -> bool:
        raise NotImplementedError

    def signature(self) -> tuple:
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """Attribute paths this predicate reads.

        Dotted entries (``"advisor.name"``) traverse object-valued
        attributes.  Incremental extent maintenance uses this to decide
        which value writes can change the predicate's outcome; predicate
        types that cannot enumerate their reads should not implement it
        (the dependency analyzer then falls back to conservative
        invalidation).
        """
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    def compile(self) -> Callable[[Reader], bool]:
        """Lower this AST to a specialized closure (cached per signature).

        The compiled function has exactly the semantics of :meth:`matches`
        — same results, same exceptions, same evaluation order — but pays
        no per-node call overhead.  Node types the compiler does not know
        fall back to the bound interpreter, and the global switch
        ``REPRO_COMPILED_PREDICATES=0`` disables lowering entirely; see
        :mod:`repro.algebra.compiler`.
        """
        from repro.algebra.compiler import compile_predicate

        return compile_predicate(self)

    # boolean-operator sugar --------------------------------------------------

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """``attribute <op> constant`` — e.g. ``Compare("age", ">=", 21)``."""

    attribute: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def matches(self, reader: Reader) -> bool:
        actual = reader(self.attribute)
        try:
            return _COMPARATORS[self.op](actual, self.value)
        except TypeError:
            # Unset attributes (None) never satisfy an ordering comparison;
            # equality against None still works through the == branch above.
            return False

    def signature(self) -> tuple:
        return ("compare", self.attribute, self.op, self.value)

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attribute})

    def to_dict(self) -> dict:
        return {
            "kind": "compare",
            "attribute": self.attribute,
            "op": self.op,
            "value": self.value,
        }

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class IsIn(Predicate):
    """``attribute in {constants}``."""

    attribute: str
    values: Tuple[object, ...]

    def matches(self, reader: Reader) -> bool:
        return reader(self.attribute) in self.values

    def signature(self) -> tuple:
        return ("isin", self.attribute, tuple(sorted(map(repr, self.values))))

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attribute})

    def to_dict(self) -> dict:
        return {"kind": "isin", "attribute": self.attribute, "values": list(self.values)}

    def __str__(self) -> str:
        return f"{self.attribute} in {set(self.values)!r}"


@dataclass(frozen=True)
class IsSet(Predicate):
    """True when the attribute has a non-``None`` value."""

    attribute: str

    def matches(self, reader: Reader) -> bool:
        return reader(self.attribute) is not None

    def signature(self) -> tuple:
        return ("isset", self.attribute)

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attribute})

    def to_dict(self) -> dict:
        return {"kind": "isset", "attribute": self.attribute}

    def __str__(self) -> str:
        return f"{self.attribute} is set"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches everything (useful for tests and as a neutral element)."""

    def matches(self, reader: Reader) -> bool:
        return True

    def signature(self) -> tuple:
        return ("true",)

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def to_dict(self) -> dict:
        return {"kind": "true"}

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, reader: Reader) -> bool:
        return self.left.matches(reader) and self.right.matches(reader)

    def signature(self) -> tuple:
        return ("and", self.left.signature(), self.right.signature())

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def to_dict(self) -> dict:
        return {"kind": "and", "left": self.left.to_dict(), "right": self.right.to_dict()}

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def matches(self, reader: Reader) -> bool:
        return self.left.matches(reader) or self.right.matches(reader)

    def signature(self) -> tuple:
        return ("or", self.left.signature(), self.right.signature())

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def to_dict(self) -> dict:
        return {"kind": "or", "left": self.left.to_dict(), "right": self.right.to_dict()}

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def matches(self, reader: Reader) -> bool:
        return not self.inner.matches(reader)

    def signature(self) -> tuple:
        return ("not", self.inner.signature())

    def attributes(self) -> FrozenSet[str]:
        return self.inner.attributes()

    def to_dict(self) -> dict:
        return {"kind": "not", "inner": self.inner.to_dict()}

    def __str__(self) -> str:
        return f"(not {self.inner})"


def predicate_from_dict(data: dict) -> Predicate:
    """Rebuild a predicate from its :meth:`Predicate.to_dict` form."""
    kind = data.get("kind")
    if kind == "compare":
        return Compare(data["attribute"], data["op"], data["value"])
    if kind == "isin":
        return IsIn(data["attribute"], tuple(data["values"]))
    if kind == "isset":
        return IsSet(data["attribute"])
    if kind == "true":
        return TruePredicate()
    if kind == "and":
        return And(predicate_from_dict(data["left"]), predicate_from_dict(data["right"]))
    if kind == "or":
        return Or(predicate_from_dict(data["left"]), predicate_from_dict(data["right"]))
    if kind == "not":
        return Not(predicate_from_dict(data["inner"]))
    raise PredicateError(f"unknown predicate kind {kind!r}")
