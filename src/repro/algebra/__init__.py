"""The extended object algebra: derivations, defineVC, generic updates."""

from repro.algebra.define import AlgebraProcessor, DefineOutcome, DefineStatement
from repro.algebra.expressions import (
    And,
    Compare,
    IsIn,
    IsSet,
    Not,
    Or,
    Predicate,
    TruePredicate,
    predicate_from_dict,
)
from repro.algebra.operators import (
    difference,
    hide,
    intersect,
    refine,
    select,
    union,
)
from repro.algebra.updates import (
    UpdateEngine,
    UpdateReport,
    ValueClosurePolicy,
)

__all__ = [
    "AlgebraProcessor",
    "DefineOutcome",
    "DefineStatement",
    "And",
    "Compare",
    "IsIn",
    "IsSet",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "predicate_from_dict",
    "difference",
    "hide",
    "intersect",
    "refine",
    "select",
    "union",
    "UpdateEngine",
    "UpdateReport",
    "ValueClosurePolicy",
]
