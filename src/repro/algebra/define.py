"""``defineVC <name> as <query>`` — executing view-definition statements.

After execution the name appears "as a persistent class of the database,
just like base classes" (section 3.2): the derivation is registered and the
classifier integrates the class into the global schema, possibly discovering
that an equivalent class already exists (in which case the existing class is
reused and reported).

Statements are first-class values so the TSE Translator can *produce* a list
of them (figure 7 (b) shows exactly such a generated script) and so the
command-language interpreter and the tests can render them back to the
paper's syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.classifier.classify import ClassificationResult, Classifier
from repro.obs.tracing import Tracer
from repro.schema.classes import Derivation
from repro.schema.graph import GlobalSchema


@dataclass(frozen=True)
class DefineStatement:
    """One ``defineVC`` statement: a name bound to a derivation query."""

    name: str
    derivation: Derivation
    #: optional name of the view-class this statement primes/replaces, used
    #: by the TSE pipeline when assembling the successor view schema
    primes: Optional[str] = None

    def render(self) -> str:
        """The statement in the paper's concrete syntax."""
        return f"defineVC {self.name} as ({self.derivation.describe()})"


@dataclass
class DefineOutcome:
    """Result of executing one statement.

    ``class_name`` is the name to use from now on — it differs from the
    statement's requested name when the classifier found a duplicate.
    """

    statement: DefineStatement
    class_name: str
    created: bool
    classification: ClassificationResult


class AlgebraProcessor:
    """Executes ``defineVC`` statements against a global schema.

    This is the paper's *Extended Object Algebra Processor* module
    (figure 6); the TSE Manager feeds it translator output.
    """

    def __init__(self, schema: GlobalSchema, tracer: Optional[Tracer] = None) -> None:
        self.schema = schema
        self.tracer = tracer if tracer is not None else Tracer()
        self.classifier = Classifier(schema, tracer=self.tracer)

    def execute(self, statement: DefineStatement, meta: Optional[dict] = None) -> DefineOutcome:
        """Run one statement: derive the class and classify it."""
        merged_meta = {"derivation": statement.derivation.describe()}
        if statement.primes:
            merged_meta["primes"] = statement.primes
        if meta:
            merged_meta.update(meta)
        result = self.classifier.classify_new(
            statement.name, statement.derivation, meta=merged_meta
        )
        return DefineOutcome(
            statement=statement,
            class_name=result.cls.name,
            created=result.created,
            classification=result,
        )

    def execute_all(
        self, statements: Sequence[DefineStatement], meta: Optional[dict] = None
    ) -> List[DefineOutcome]:
        """Run a script of statements in order, re-pointing later statements
        at reused classes when duplicates were discovered."""
        outcomes: List[DefineOutcome] = []
        substitutions: dict = {}
        for statement in statements:
            derivation = _substitute_sources(statement.derivation, substitutions)
            effective = DefineStatement(
                name=statement.name, derivation=derivation, primes=statement.primes
            )
            outcome = self.execute(effective, meta=meta)
            if outcome.class_name != statement.name:
                substitutions[statement.name] = outcome.class_name
            outcomes.append(outcome)
        return outcomes


def _substitute_sources(derivation: Derivation, substitutions: dict) -> Derivation:
    """Rewrite source names through the duplicate-substitution map."""
    if not substitutions:
        return derivation
    sources = tuple(substitutions.get(s, s) for s in derivation.sources)
    shared = tuple(
        type(s)(from_class=substitutions.get(s.from_class, s.from_class), name=s.name)
        for s in derivation.shared_properties
    )
    if sources == derivation.sources and shared == derivation.shared_properties:
        return derivation
    return Derivation(
        op=derivation.op,
        sources=sources,
        predicate=derivation.predicate,
        hidden=derivation.hidden,
        new_properties=derivation.new_properties,
        shared_properties=shared,
    )
