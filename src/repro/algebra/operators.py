"""Constructors for the extended object algebra (section 3.2).

Each function validates its operands against the global schema and returns a
:class:`~repro.schema.classes.Derivation` ready to be handed to ``defineVC``
(:mod:`repro.algebra.define`).  The validation rules come straight from the
paper:

* ``hide`` removes properties that must exist in the source's type;
* ``refine`` introduces properties whose names "must be different from all
  existing functions defined for the type of the class"; the *extended*
  refine additionally accepts stored attributes (capacity augmentation) and
  the ``C1:x`` shared-property form;
* set operators take any two classes ("ultimately, they are all objects").
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

from repro.errors import DuplicateProperty, InvalidDerivation, UnknownProperty
from repro.algebra.expressions import Predicate
from repro.schema.classes import Derivation, SharedProperty
from repro.schema.graph import GlobalSchema
from repro.schema.properties import Attribute, Method, Property
from repro.schema.types import property_names


def _require_class(schema: GlobalSchema, name: str) -> None:
    schema[name]  # raises UnknownClass when absent


def select(schema: GlobalSchema, source: str, predicate: Predicate) -> Derivation:
    """``select from <source> where <predicate>`` — subset, same type."""
    _require_class(schema, source)
    if not isinstance(predicate, Predicate):
        raise InvalidDerivation("select predicate must be a Predicate instance")
    return Derivation(op="select", sources=(source,), predicate=predicate)


def hide(schema: GlobalSchema, properties: Sequence[str], source: str) -> Derivation:
    """``hide <properties> from <source>`` — same extent, supertype."""
    _require_class(schema, source)
    if not properties:
        raise InvalidDerivation("hide requires at least one property name")
    available = property_names(schema.type_of(source))
    missing = sorted(set(properties) - set(available))
    if missing:
        raise UnknownProperty(
            f"cannot hide {missing} from {source!r}: not in its type"
        )
    if set(properties) >= set(available):
        raise InvalidDerivation(
            f"hiding every property of {source!r} would leave an empty type"
        )
    return Derivation(op="hide", sources=(source,), hidden=tuple(sorted(properties)))


def refine(
    schema: GlobalSchema,
    properties: Sequence[Union[Property, SharedProperty]],
    source: str,
) -> Derivation:
    """``refine <property-defs> for <source>`` — same extent, subtype.

    ``properties`` mixes new definitions (:class:`Attribute` — including
    *stored* attributes, the capacity-augmenting extension — and
    :class:`Method`) with :class:`SharedProperty` references implementing the
    ``refine C1:x for C2`` inheritance form of section 3.2.
    """
    _require_class(schema, source)
    if not properties:
        raise InvalidDerivation("refine requires at least one property")
    existing = property_names(schema.type_of(source))
    new_props = []
    shared = []
    seen = set()
    for prop in properties:
        if isinstance(prop, SharedProperty):
            _require_class(schema, prop.from_class)
            donor_names = property_names(schema.type_of(prop.from_class))
            if prop.name not in donor_names:
                raise UnknownProperty(
                    f"class {prop.from_class!r} has no property {prop.name!r} "
                    f"to share"
                )
            name = prop.name
            shared.append(prop)
        elif isinstance(prop, (Attribute, Method)):
            name = prop.name
            new_props.append(prop)
        else:
            raise InvalidDerivation(f"not a property definition: {prop!r}")
        if name in existing:
            raise DuplicateProperty(
                f"refine rejected: {name!r} already defined for {source!r}"
            )
        if name in seen:
            raise DuplicateProperty(f"refine lists {name!r} twice")
        seen.add(name)
    return Derivation(
        op="refine",
        sources=(source,),
        new_properties=tuple(new_props),
        shared_properties=tuple(shared),
    )


def union(schema: GlobalSchema, first: str, second: str) -> Derivation:
    """``union <first> and <second>`` — superset extent, common supertype."""
    _require_class(schema, first)
    _require_class(schema, second)
    return Derivation(op="union", sources=(first, second))


def difference(schema: GlobalSchema, first: str, second: str) -> Derivation:
    """``difference <first> and <second>`` — subset of the first argument."""
    _require_class(schema, first)
    _require_class(schema, second)
    return Derivation(op="difference", sources=(first, second))


def intersect(schema: GlobalSchema, first: str, second: str) -> Derivation:
    """``intersect <first> and <second>`` — greatest common subtype."""
    _require_class(schema, first)
    _require_class(schema, second)
    return Derivation(op="intersect", sources=(first, second))
