"""Generic update operators and their propagation through views (§3.3–3.4).

The five generic operators — ``create``, ``delete``, ``set``, ``add``,
``remove`` — are applicable to base *and* virtual classes.  Updates against a
virtual class are routed to its source classes following the per-operator
rules of section 3.4, eventually bottoming out at *origin* base classes
(the Theorem 1 construction).  The routing table:

===========  =====================================================
derivation   routing
===========  =====================================================
select       all ops work on the source; creations/additions/sets
             that leave the predicate unsatisfied raise (or are
             allowed through, never becoming visible) per the
             configured value-closure policy
difference   all ops work on the *first* argument class
hide         all ops on the source; hidden attributes cannot be
             assigned — defaults apply; a hidden REQUIRED attribute
             without a default rejects creation (footnote 4)
refine       all ops on the source; ``set`` of a refining attribute
             is applied at the virtual class itself (its slice)
union        ``create``/``add`` go to the *propagation source* (the
             substituted class of section 6.5.4) or an explicit
             target; ``delete``/``remove``/``set`` go to both
             arguments when the object is a member
intersect    ``create``/``add`` propagate to *both* arguments;
             ``remove`` is ambiguous — both by default, or an
             explicit single target
===========  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    NotAMember,
    NotUpdatable,
    UnknownProperty,
    UpdateRejected,
)
from repro.objectmodel.slicing import InstancePool
from repro.schema.classes import BaseClass, VirtualClass
from repro.schema.extents import (
    ExtentEvaluator,
    IncrementalExtentEvaluator,
    read_attribute,
)
from repro.schema.graph import GlobalSchema
from repro.schema.properties import Attribute
from repro.schema import types as typemod
from repro.storage.oid import Oid


class ValueClosurePolicy(enum.Enum):
    """The two resolutions of the value-closure problem [6] (section 3.4)."""

    #: reject creations/additions/sets that would not be visible in the class
    REJECT = "reject"
    #: perform them on the source class; the object simply stays invisible
    ALLOW = "allow"


@dataclass
class UpdateReport:
    """What an update actually did — useful for tests and tracing."""

    operation: str
    class_name: str
    oids: Tuple[Oid, ...]
    routed_to: Tuple[str, ...]


class UpdateEngine:
    """Executes generic updates with section 3.4 propagation."""

    def __init__(
        self,
        schema: GlobalSchema,
        pool: InstancePool,
        evaluator: Optional[ExtentEvaluator] = None,
        value_closure: ValueClosurePolicy = ValueClosurePolicy.REJECT,
    ) -> None:
        self.schema = schema
        self.pool = pool
        self.evaluator = evaluator or IncrementalExtentEvaluator(schema, pool)
        self.value_closure = value_closure
        #: optional :class:`repro.storage.wal.WalManager`; when set, every
        #: successful operator journals a logical record.  Records are
        #: written *after* the in-memory mutation succeeds (a rejected
        #: update leaves no trace), carrying the pre-operation OID
        #: watermark so replay allocates identically even though failed
        #: operations consumed OIDs without logging anything.
        self.journal = None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _check_updatable(self, class_name: str) -> None:
        if not self.schema[class_name].updatable:
            raise NotUpdatable(
                f"class {class_name!r} was derived by an object-generating "
                f"query and is not updatable with generic operators"
            )

    def insertion_targets(
        self, class_name: str, union_target: Optional[str] = None
    ) -> FrozenSet[str]:
        """Base classes a ``create``/``add`` against ``class_name`` lands in.

        ``union_target`` overrides the routing at union classes (the paper's
        "the choice depends on the context").
        """
        self._check_updatable(class_name)
        cls = self.schema[class_name]
        if isinstance(cls, BaseClass):
            return frozenset({class_name})
        assert isinstance(cls, VirtualClass)
        der = cls.derivation
        if der.op in ("select", "hide", "refine"):
            return self.insertion_targets(der.source, union_target)
        if der.op == "difference":
            return self.insertion_targets(der.sources[0], union_target)
        if der.op == "union":
            chosen = union_target or cls.propagation_source or der.sources[0]
            if chosen == "both":
                return self.insertion_targets(
                    der.sources[0], None
                ) | self.insertion_targets(der.sources[1], None)
            if chosen not in der.sources:
                raise UpdateRejected(
                    f"union target {chosen!r} is not a source of {class_name!r}"
                )
            return self.insertion_targets(chosen, None)
        if der.op == "intersect":
            return self.insertion_targets(
                der.sources[0], union_target
            ) | self.insertion_targets(der.sources[1], union_target)
        raise UpdateRejected(f"unhandled derivation {der.op!r}")  # pragma: no cover

    def origin_classes(self, class_name: str) -> FrozenSet[str]:
        """All base classes reachable by chasing source relationships — the
        *origin classes* of section 3.4."""
        cls = self.schema[class_name]
        if isinstance(cls, BaseClass):
            return frozenset({class_name})
        assert isinstance(cls, VirtualClass)
        result: Set[str] = set()
        for source in cls.derivation.sources:
            result |= self.origin_classes(source)
        return frozenset(result)

    def removal_targets(
        self, class_name: str, target: Optional[str] = None
    ) -> FrozenSet[str]:
        """Base classes a ``remove`` against ``class_name`` propagates to."""
        self._check_updatable(class_name)
        cls = self.schema[class_name]
        if isinstance(cls, BaseClass):
            return frozenset({class_name})
        assert isinstance(cls, VirtualClass)
        der = cls.derivation
        if der.op in ("select", "hide", "refine"):
            return self.removal_targets(der.source, target)
        if der.op == "difference":
            return self.removal_targets(der.sources[0], target)
        if der.op == "union":
            # remove goes to both sources when the object is a member there
            return self.removal_targets(der.sources[0]) | self.removal_targets(
                der.sources[1]
            )
        if der.op == "intersect":
            if target is not None:
                if target not in der.sources:
                    raise UpdateRejected(
                        f"intersect target {target!r} is not a source of "
                        f"{class_name!r}"
                    )
                return self.removal_targets(target)
            return self.removal_targets(der.sources[0]) | self.removal_targets(
                der.sources[1]
            )
        raise UpdateRejected(f"unhandled derivation {der.op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # assignment helpers
    # ------------------------------------------------------------------

    def _resolve_assignable(self, class_name: str, attr: str):
        """Resolve ``attr`` in the class's type, insisting it is a stored
        attribute (methods and derived attributes are not assignable)."""
        type_map = self.schema.type_of(class_name)
        resolved = typemod.resolve_qualified(type_map, attr, class_name=class_name)
        if not isinstance(resolved.prop, Attribute) or resolved.storage_class is None:
            raise UpdateRejected(
                f"{attr!r} of {class_name!r} is not an assignable stored attribute"
            )
        return resolved

    def _apply_assignments(
        self, oid: Oid, class_name: str, assignments: Dict[str, object]
    ) -> List[Tuple[str, str, bool, object]]:
        """Write assignments through ``class_name``'s type.

        Returns an undo log of ``(storage_class, attr, had_value, old)``.
        """
        undo: List[Tuple[str, str, bool, object]] = []
        for attr, value in assignments.items():
            resolved = self._resolve_assignable(class_name, attr)
            storage = resolved.storage_class
            bare_name = resolved.name  # qualified refs store under the name
            had = self.pool.has_value(oid, storage, bare_name)
            old = self.pool.get_value(oid, storage, bare_name) if had else None
            undo.append((storage, bare_name, had, old))
            self.pool.set_value(oid, storage, bare_name, value)
        return undo

    def _rollback_assignments(
        self, oid: Oid, undo: List[Tuple[str, str, bool, object]]
    ) -> None:
        for storage, attr, had, old in reversed(undo):
            if had:
                self.pool.set_value(oid, storage, attr, old)
            else:
                self.pool.remove_value(oid, storage, attr)

    def _fill_required(self, oid: Oid, base_targets: Iterable[str]) -> None:
        """Apply defaults / reject for REQUIRED attributes after a create.

        Walks the types of the classes the new object became a member of; a
        required stored attribute without a value takes its declared default,
        and rejects the creation when no default exists (footnote 4's hidden-
        REQUIRED case surfaces here, because the hide class's type cannot
        assign the attribute).
        """
        for target in base_targets:
            type_map = self.schema.type_of(target)
            for entry in typemod.stored_attributes(type_map):
                prop = entry.prop
                assert isinstance(prop, Attribute)
                if not prop.required:
                    continue
                if self.pool.has_value(oid, entry.storage_class, prop.name):
                    continue
                if prop.default is not None:
                    self.pool.set_value(
                        oid, entry.storage_class, prop.name, prop.default
                    )
                else:
                    raise UpdateRejected(
                        f"required attribute {prop.name!r} of {target!r} "
                        f"received no value and has no default"
                    )

    # ------------------------------------------------------------------
    # the five generic operators
    # ------------------------------------------------------------------

    def create(
        self,
        class_name: str,
        assignments: Optional[Dict[str, object]] = None,
        union_target: Optional[str] = None,
    ) -> Oid:
        """``<class> create [<assignments>]`` — returns the new object's OID."""
        assignments = dict(assignments or {})
        oid_base = self.pool.store.oid_next
        targets = self.insertion_targets(class_name, union_target)
        obj = self.pool.create_object(targets)
        try:
            self._apply_assignments(obj.oid, class_name, assignments)
            self._fill_required(obj.oid, targets)
            if (
                self.value_closure is ValueClosurePolicy.REJECT
                and obj.oid not in self.evaluator.extent(class_name)
            ):
                raise UpdateRejected(
                    f"created object would not be visible in {class_name!r} "
                    f"(value-closure violation)"
                )
        except Exception:
            self.pool.destroy_object(obj.oid)
            raise
        if self.journal is not None:
            self.journal.log_create(
                class_name, assignments, union_target, obj.oid, oid_base
            )
        return obj.oid

    def delete(self, oids: Iterable[Oid]) -> UpdateReport:
        """``<set-expr> delete`` — destroy objects entirely (all classes)."""
        oids = tuple(oids)
        for oid in oids:
            self.pool.destroy_object(oid)
        if self.journal is not None and oids:
            self.journal.log_delete(oids)
        return UpdateReport("delete", "*", oids, ())

    def set_values(
        self,
        oids: Iterable[Oid],
        class_name: str,
        assignments: Dict[str, object],
    ) -> UpdateReport:
        """``<set-expr> set [<assignments>]`` through ``class_name``'s type.

        A refining attribute is stored at the refine virtual class (its
        storage class); everything else propagates to the defining source —
        both fall out of type resolution, which records the storage class per
        attribute.
        """
        self._check_updatable(class_name)
        oids = tuple(oids)
        oid_base = self.pool.store.oid_next
        extent = self.evaluator.extent(class_name)
        for oid in oids:
            if oid not in extent:
                raise NotAMember(f"{oid} is not a member of {class_name!r}")
        undo_per_oid: List[Tuple[Oid, list]] = []
        try:
            for oid in oids:
                undo = self._apply_assignments(oid, class_name, dict(assignments))
                undo_per_oid.append((oid, undo))
            if self.value_closure is ValueClosurePolicy.REJECT:
                new_extent = self.evaluator.extent(class_name)
                escaped = [oid for oid in oids if oid not in new_extent]
                if escaped:
                    raise UpdateRejected(
                        f"set would move {len(escaped)} object(s) out of "
                        f"{class_name!r} (value-closure violation)"
                    )
        except Exception:
            for oid, undo in reversed(undo_per_oid):
                self._rollback_assignments(oid, undo)
            raise
        if self.journal is not None and oids:
            self.journal.log_set(class_name, oids, assignments, oid_base)
        return UpdateReport("set", class_name, oids, ())

    def add(
        self,
        oids: Iterable[Oid],
        class_name: str,
        union_target: Optional[str] = None,
    ) -> UpdateReport:
        """``<set-expr> add <class>`` — objects acquire the class's type."""
        oids = tuple(oids)
        targets = self.insertion_targets(class_name, union_target)
        added: List[Tuple[Oid, str]] = []
        try:
            for oid in oids:
                for target in targets:
                    if target not in self.pool.get(oid).direct_classes:
                        self.pool.add_membership(oid, target)
                        added.append((oid, target))
            if self.value_closure is ValueClosurePolicy.REJECT:
                extent = self.evaluator.extent(class_name)
                escaped = [oid for oid in oids if oid not in extent]
                if escaped:
                    raise UpdateRejected(
                        f"add could not make {len(escaped)} object(s) visible "
                        f"in {class_name!r} (value-closure violation)"
                    )
        except Exception:
            for oid, target in reversed(added):
                # the forward pass only recorded memberships (slices appear
                # lazily), so a slice for ``target`` can only pre-exist —
                # e.g. as ancestor storage of another membership — and the
                # rollback must not destroy its values
                self.pool.remove_membership(oid, target, keep_slice=True)
            raise
        if self.journal is not None and oids:
            self.journal.log_add(class_name, oids, union_target)
        return UpdateReport("add", class_name, oids, tuple(sorted(targets)))

    def remove(
        self,
        oids: Iterable[Oid],
        class_name: str,
        target: Optional[str] = None,
    ) -> UpdateReport:
        """``<set-expr> remove <class>`` — objects lose the class's type."""
        oids = tuple(oids)
        targets = self.removal_targets(class_name, target)
        extent = self.evaluator.extent(class_name)
        for oid in oids:
            if oid not in extent:
                raise NotAMember(f"{oid} is not a member of {class_name!r}")
        for oid in oids:
            obj = self.pool.get(oid)
            removable = [t for t in targets if t in obj.direct_classes]
            if not removable:
                raise NotAMember(
                    f"{oid} has no direct membership among {sorted(targets)}"
                )
            remaining = set(obj.direct_classes) - set(removable)
            for member_class in removable:
                # the slice stays when the removed class is still an ancestor
                # of a remaining membership: the object keeps that part of its
                # type, so removing the direct membership must not lose values
                keep = any(
                    self.schema.is_ancestor(member_class, direct)
                    for direct in remaining
                )
                self.pool.remove_membership(oid, member_class, keep_slice=keep)
        if self.journal is not None and oids:
            self.journal.log_remove(class_name, oids, target)
        return UpdateReport("remove", class_name, oids, tuple(sorted(targets)))

    # ------------------------------------------------------------------
    # Theorem 1 support
    # ------------------------------------------------------------------

    def is_updatable(self, class_name: str) -> bool:
        """Theorem 1 marker propagation: a class is updatable when it is a
        base class or all the classes its derivation is based on are."""
        cls = self.schema[class_name]
        if not cls.updatable:
            return False
        if isinstance(cls, BaseClass):
            return True
        assert isinstance(cls, VirtualClass)
        return all(self.is_updatable(source) for source in cls.derivation.sources)
