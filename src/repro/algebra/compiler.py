"""Predicate compilation: lowering ASTs to specialized closures.

``Predicate.matches`` is a recursive tree-walk: every evaluation pays one
Python call per AST node plus a dictionary dispatch per comparison.  Select
predicates sit on the hottest paths of the system — the incremental extent
engine rechecks them per candidate on every relevant write, and the
from-scratch evaluator runs them across whole extents — so the interpreter's
constant factor is pure overhead multiplied by the database's write rate.

:func:`compile_predicate` lowers one AST to a single flat closure:

* **Compare** binds its comparator at compile time (the ``_COMPARATORS``
  dict lookup is constant-folded away) and keeps the interpreter's
  ``TypeError -> False`` contract for ordering against ``None``;
* **IsIn** interns its constants into a ``frozenset`` when they are hashable
  (O(1) membership instead of a tuple scan);
* **And**/**Or** chains are flattened: ``a and b and c`` becomes one closure
  over a tuple of compiled children evaluated left-to-right with the same
  short-circuit (and exception) order as the nested interpreter;
* **Not**/**IsSet**/**TruePredicate** become single closures.

Compiled functions have exactly the interpreter's observable semantics —
same results, same exceptions from the attribute reader, same evaluation
order — which ``tests/test_predicate_compiler.py`` asserts property-style
over randomized ASTs and readers.

**Fallback.**  A predicate type the lowerer does not recognise (user
subclasses of :class:`~repro.algebra.expressions.Predicate`) compiles to its
own bound ``matches`` — the interpreter *is* the fallback, so compilation
can never change behaviour, only speed.  The switch
``REPRO_COMPILED_PREDICATES=0`` (or :func:`set_compilation`) disables
lowering globally and makes :func:`matcher` hand back bound ``matches``
everywhere; the differential oracle runs green under both settings.

Compiled closures are cached per :meth:`Predicate.signature` — two
textually identical predicates (which the classifier already treats as the
same class) share one compiled function.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Optional, Tuple

#: environment switch: set to ``0``/``false``/``off`` to fall back to the
#: interpreted ``matches`` tree-walk everywhere (read once at import; use
#: :func:`set_compilation` to flip at runtime)
ENV_SWITCH = "REPRO_COMPILED_PREDICATES"

_lock = threading.Lock()
_cache: Dict[tuple, Callable[[Callable[[str], object]], bool]] = {}
_stats = {"compiled": 0, "hits": 0, "fallbacks": 0}


def _env_enabled() -> bool:
    raw = os.environ.get(ENV_SWITCH, "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_enabled = _env_enabled()


def compilation_enabled() -> bool:
    """Is predicate lowering active (env switch + runtime toggle)?"""
    return _enabled


#: bumped on every :func:`set_compilation` flip so caches holding compiled
#: matchers (the extent evaluators') know to rebuild
_epoch = 0


def compilation_epoch() -> int:
    """Monotone counter identifying the current toggle state; include it in
    any cache key that stores the output of :func:`matcher`."""
    return _epoch


def set_compilation(enabled: bool) -> None:
    """Runtime override of the ``REPRO_COMPILED_PREDICATES`` switch (used by
    the CLI's ``.compile`` meta-command and the before/after benchmarks)."""
    global _enabled, _epoch
    if bool(enabled) != _enabled:
        _enabled = bool(enabled)
        _epoch += 1


def compiler_stats() -> Dict[str, int]:
    """Counters for observability: closures built, cache hits, fallbacks."""
    with _lock:
        return dict(_stats, cache_size=len(_cache))


def clear_cache() -> None:
    with _lock:
        _cache.clear()
        _stats["compiled"] = _stats["hits"] = _stats["fallbacks"] = 0


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------

def _lower(pred) -> Callable[[Callable[[str], object]], bool]:
    """Build one specialized closure for ``pred`` (recursive, uncached)."""
    from repro.algebra.expressions import (
        And,
        Compare,
        IsIn,
        IsSet,
        Not,
        Or,
        TruePredicate,
        _COMPARATORS,
    )

    kind = type(pred)
    if kind is Compare:
        attribute = pred.attribute
        constant = pred.value
        op = pred.op
        if op == "==":
            def compiled(reader, _a=attribute, _c=constant):
                return reader(_a) == _c
            return compiled
        if op == "!=":
            def compiled(reader, _a=attribute, _c=constant):
                return reader(_a) != _c
            return compiled
        comparator = _COMPARATORS[op]
        # ordering comparators: unset attributes (None) never satisfy them;
        # the TypeError guard reproduces the interpreter's contract exactly
        def compiled(reader, _a=attribute, _c=constant, _cmp=comparator):
            actual = reader(_a)
            try:
                return _cmp(actual, _c)
            except TypeError:
                return False
        return compiled
    if kind is IsIn:
        attribute = pred.attribute
        values = pred.values
        try:
            interned = frozenset(values)
        except TypeError:  # unhashable constants: keep the tuple scan
            interned = values
        def compiled(reader, _a=attribute, _v=interned):
            return reader(_a) in _v
        return compiled
    if kind is IsSet:
        attribute = pred.attribute
        def compiled(reader, _a=attribute):
            return reader(_a) is not None
        return compiled
    if kind is TruePredicate:
        return lambda reader: True
    if kind is And:
        children = tuple(_lower(c) for c in _flatten(pred, And))
        def compiled(reader, _cs=children):
            for child in _cs:
                if not child(reader):
                    return False
            return True
        return compiled
    if kind is Or:
        children = tuple(_lower(c) for c in _flatten(pred, Or))
        def compiled(reader, _cs=children):
            for child in _cs:
                if child(reader):
                    return True
            return False
        return compiled
    if kind is Not:
        inner = _lower(pred.inner)
        def compiled(reader, _inner=inner):
            return not _inner(reader)
        return compiled
    # unknown node type (user-defined Predicate subclass): the interpreter
    # is the compiled form — behaviour is preserved by construction
    with _lock:
        _stats["fallbacks"] += 1
    return pred.matches


def _flatten(pred, connective) -> list:
    """Left-to-right leaves of a nested And/Or chain (evaluation order of
    the flattened closure matches the recursive interpreter's)."""
    out = []
    stack = [pred]
    while stack:
        node = stack.pop()
        if type(node) is connective:
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


def compile_predicate(pred) -> Callable[[Callable[[str], object]], bool]:
    """The compiled evaluator for ``pred``: ``compiled(reader) -> bool``.

    Cached per :meth:`~repro.algebra.expressions.Predicate.signature`;
    signatures that cannot be computed (or are unhashable) compile uncached.
    """
    try:
        key: Optional[tuple] = pred.signature()
        hash(key)
    except Exception:
        key = None
    if key is not None:
        with _lock:
            cached = _cache.get(key)
            if cached is not None:
                _stats["hits"] += 1
                return cached
    compiled = _lower(pred)
    if key is not None:
        with _lock:
            _cache[key] = compiled
            _stats["compiled"] += 1
    return compiled


def matcher(pred) -> Callable[[Callable[[str], object]], bool]:
    """The evaluator hot paths should call: compiled when compilation is
    enabled, the bound interpreter ``matches`` otherwise."""
    if _enabled:
        return compile_predicate(pred)
    return pred.matches


# ---------------------------------------------------------------------------
# row lowering: predicates over pre-bound column readers
# ---------------------------------------------------------------------------

def _lower_row(pred, resolve) -> Optional[Callable[[object], bool]]:
    """Lower ``pred`` against per-attribute OID readers: ``fn(oid) -> bool``.

    ``resolve(attr)`` returns a pre-bound ``fn(oid) -> value`` column
    reader.  Where :func:`_lower` pays a fresh attribute-reader closure per
    evaluated object, the row form binds each attribute's reader once at
    compile time — a select scan then runs zero allocations per candidate.
    Returns ``None`` for AST nodes it cannot lower (user Predicate
    subclasses); the caller falls back to the reader-based form for the
    whole predicate so evaluation order stays exactly the interpreter's.
    """
    from repro.algebra.expressions import (
        And,
        Compare,
        IsIn,
        IsSet,
        Not,
        Or,
        TruePredicate,
        _COMPARATORS,
    )

    kind = type(pred)
    if kind is Compare:
        read = resolve(pred.attribute)
        constant = pred.value
        op = pred.op
        if op == "==":
            def compiled(oid, _r=read, _c=constant):
                return _r(oid) == _c
            return compiled
        if op == "!=":
            def compiled(oid, _r=read, _c=constant):
                return _r(oid) != _c
            return compiled
        comparator = _COMPARATORS[op]
        def compiled(oid, _r=read, _c=constant, _cmp=comparator):
            actual = _r(oid)
            try:
                return _cmp(actual, _c)
            except TypeError:
                return False
        return compiled
    if kind is IsIn:
        read = resolve(pred.attribute)
        values = pred.values
        try:
            interned = frozenset(values)
        except TypeError:
            interned = values
        def compiled(oid, _r=read, _v=interned):
            return _r(oid) in _v
        return compiled
    if kind is IsSet:
        read = resolve(pred.attribute)
        def compiled(oid, _r=read):
            return _r(oid) is not None
        return compiled
    if kind is TruePredicate:
        return lambda oid: True
    if kind in (And, Or):
        children = []
        for child in _flatten(pred, kind):
            lowered = _lower_row(child, resolve)
            if lowered is None:
                return None
            children.append(lowered)
        children = tuple(children)
        if kind is And:
            def compiled(oid, _cs=children):
                for child in _cs:
                    if not child(oid):
                        return False
                return True
        else:
            def compiled(oid, _cs=children):
                for child in _cs:
                    if child(oid):
                        return True
                return False
        return compiled
    if kind is Not:
        inner = _lower_row(pred.inner, resolve)
        if inner is None:
            return None
        def compiled(oid, _inner=inner):
            return not _inner(oid)
        return compiled
    return None


def row_matcher(pred, resolve, reader_factory) -> Callable[[object], bool]:
    """An OID-level matcher: ``fn(oid) -> bool``.

    When compilation is on and every node lowers, the result reads columns
    through ``resolve``'s pre-bound readers.  Otherwise (interpreter mode,
    or an unliftable node) it evaluates the predicate exactly as before —
    through a per-object attribute reader from ``reader_factory(oid)`` —
    so semantics never depend on which form was chosen.
    """
    if _enabled:
        lowered = _lower_row(pred, resolve)
        if lowered is not None:
            return lowered
    matches = matcher(pred)

    def fallback(oid):
        return matches(reader_factory(oid))

    return fallback
