"""The TSE network server: many tenants, one database, a view each.

``TseServer`` listens on TCP and speaks the framed JSON protocol of
:mod:`repro.server.protocol` (normative spec: ``docs/PROTOCOL.md``).  The
paper's premise — every user transparently evolves *their own view* of one
shared database — becomes an actual deployment shape here: each connection
authenticates (``hello``), binds itself to a named view schema
(``attach``), and from then on reads, updates and evolves *that* view
while every other connection keeps its own.

Concurrency model (the edgedb-style split: protocol / connection handling
/ per-connection state):

* the **event loop** owns all sockets; one reader task and one worker task
  per connection, joined by a bounded request queue — when the queue is
  full the reader task stops pulling bytes off the socket, so overload
  turns into TCP backpressure instead of unbounded buffering;
* **database work** runs on a small thread pool
  (:class:`~concurrent.futures.ThreadPoolExecutor`), because the engine's
  latches are thread primitives; the loop never blocks on them;
* each attached connection holds a
  :class:`~repro.concurrency.sessions.ReaderSession` whose **pinned epoch
  survives across await points** — a request is answered from one
  consistent snapshot even while a schema change commits on another
  connection (the session is re-pinned to the newest epoch at the start of
  each read request);
* mutating requests pass a global **writer-admission gate** (an asyncio
  semaphore) before reaching the pool, then run inside a
  :class:`~repro.concurrency.sessions.WriterSession` — bounded latch
  queueing, and an epoch republish so later reads observe the effects;
* beyond ``max_connections`` the server **sheds load**: the newcomer gets
  a typed ``busy`` error frame and is closed, instead of degrading every
  established tenant.

Everything is observable through the database's own ``obs`` bundle:
``server_requests{tenant,op}`` / ``server_errors{code}`` counters,
``server_connected{tenant}`` gauges, a ``server_request_seconds{op}``
histogram, connection lifecycle events on the EventBus (which the flight
recorder mirrors), and explicit ``server_slow_request`` flight records for
requests over the slow threshold.  ``docs/OPERATIONS.md`` is the operator
handbook.
"""

from __future__ import annotations

import asyncio
import hmac
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.errors import (
    ObjectModelError,
    TseError,
    UnknownClass,
    UnknownProperty,
    UnknownView,
)
from repro.server import protocol
from repro.server.protocol import (
    FATAL_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    ProtocolError,
)

__all__ = ["TseServer", "BackgroundServer", "serve_forever"]


def _error_code(exc: BaseException) -> str:
    """Map an exception to its wire error code (see docs/PROTOCOL.md)."""
    if isinstance(exc, ProtocolError):
        return exc.code
    if isinstance(exc, UnknownView):
        return "unknown_view"
    if isinstance(exc, (UnknownClass, UnknownProperty, ObjectModelError)):
        return "unknown_class" if isinstance(exc, UnknownClass) else "rejected"
    if isinstance(exc, TseError):
        return "rejected"
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return "bad_request"
    return "internal"


class _Connection:
    """Per-connection state: streams, protocol phase, tenant, sessions."""

    __slots__ = (
        "reader",
        "writer",
        "queue",
        "tenant",
        "view_name",
        "session",
        "greeted",
        "closing",
        "peer",
    )

    def __init__(self, reader, writer, queue_size: int) -> None:
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.tenant: Optional[str] = None
        self.view_name: Optional[str] = None
        self.session = None  # ReaderSession once attached
        self.greeted = False
        self.closing = False
        self.peer = writer.get_extra_info("peername")


class TseServer:
    """An asyncio TCP server over one :class:`~repro.core.database.TseDatabase`."""

    #: request type -> handler method name; populated below the class body
    #: and asserted complete against :data:`REQUEST_TYPES` at import time
    HANDLERS: Dict[str, str] = {}

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth_token: Optional[str] = None,
        max_connections: int = 1024,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        queue_size: int = 32,
        max_writers: int = 4,
        executor_threads: int = 4,
        slow_request_seconds: float = 0.25,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.max_connections = max_connections
        self.max_frame_bytes = max_frame_bytes
        self.queue_size = queue_size
        self.slow_request_seconds = slow_request_seconds
        # the session layer is the server's concurrency substrate: attach
        # it up front so every schema change serialises behind the latch
        self.sessions = db.sessions()
        self._writer_gate = asyncio.Semaphore(max(1, max_writers))
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, executor_threads), thread_name_prefix="tse-server"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set = set()
        self._connections: set = set()
        self._tenant_counts: Dict[str, int] = {}
        self.requests_served = 0
        self.connections_shed = 0
        self.connections_accepted = 0
        db.obs.metrics.register_group("server", self.stats_dict)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)`` (the port is
        resolved when constructed with port 0)."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.db.obs.events.emit("server_started", host=self.host, port=self.port)
        return self.host, self.port

    async def stop(self) -> None:
        """Stop listening, drain every connection, release the thread pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            conn.closing = True
            # the documented courtesy frame: tell the client to retry
            # against a new server, then hang up (closing the transport
            # also wakes the read loop with EOF)
            await self._send_error(
                conn, "shutting_down", "server is stopping; retry later", None
            )
            conn.writer.close()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for conn in list(self._connections):  # stragglers (should be none)
            self._close_connection(conn)
        self._executor.shutdown(wait=True)
        self.db.obs.events.emit("server_stopped", host=self.host, port=self.port)

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Start, run until ``stop_event`` is set, then stop."""
        await self.start()
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    # -- per-connection plumbing ------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        if len(self._connections) >= self.max_connections:
            # deliberate load shed: a typed error, then the door
            self.connections_shed += 1
            self._count_error("busy")
            self.db.obs.events.emit(
                "server_shed", peer=str(writer.get_extra_info("peername"))
            )
            await self._send_raw(
                writer,
                {
                    "type": "error",
                    "code": "busy",
                    "message": f"connection limit ({self.max_connections}) "
                    f"reached; retry later",
                },
            )
            writer.close()
            return
        conn = _Connection(reader, writer, self.queue_size)
        self._connections.add(conn)
        self._tasks.add(asyncio.current_task())
        self.connections_accepted += 1
        self.db.obs.events.emit("server_connected", peer=str(conn.peer))
        worker = asyncio.create_task(self._worker(conn))
        try:
            await self._read_loop(conn)
        finally:
            # EOF / reset / fatal framing error: drain point — let the
            # worker finish queued requests, then tear down
            try:
                await conn.queue.put(None)
                await worker
            except asyncio.CancelledError:  # loop teardown mid-drain
                worker.cancel()
            finally:
                self._close_connection(conn)
                self._tasks.discard(asyncio.current_task())

    async def _read_loop(self, conn: _Connection) -> None:
        """Pull frames off the socket into the bounded queue.

        ``queue.put`` blocks when the connection's pipeline is full — the
        socket stops being read and the kernel's receive window closes:
        backpressure, not buffering."""
        while not conn.closing:
            try:
                message = await protocol.read_frame(
                    conn.reader, max_bytes=self.max_frame_bytes
                )
            except ProtocolError as exc:
                await self._send_error(conn, exc.code, str(exc), None)
                conn.closing = True
                return
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
            ):  # client vanished mid-frame
                return
            if message is None:  # clean EOF
                return
            await conn.queue.put(message)

    async def _worker(self, conn: _Connection) -> None:
        """Process the connection's requests strictly in order.

        Exits only on the ``None`` sentinel the accept handler enqueues at
        teardown; once the connection is closing it keeps *draining* the
        queue without processing, so a read loop blocked on ``put`` can
        never deadlock against a finished worker."""
        while True:
            message = await conn.queue.get()
            if message is None:
                return
            if conn.closing:
                continue
            try:
                await self._dispatch(conn, message)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — last-resort guard
                # a dispatch bug must not kill the worker: a dead worker
                # leaves the client hanging and, once the bounded queue
                # fills, deadlocks the read loop (and stop()) on put()
                await self._send_error(
                    conn, "internal", str(exc) or repr(exc), message.get("id")
                )
            if conn.closing:
                # goodbye or a fatal error frame: the response is already
                # flushed, so closing the transport unblocks the read loop
                conn.writer.close()

    async def _dispatch(self, conn: _Connection, message: dict) -> None:
        loop = asyncio.get_running_loop()
        rtype = message.get("type")
        rid = message.get("id")
        handler_name = self.HANDLERS.get(rtype)
        if handler_name is None:
            await self._send_error(
                conn,
                "unknown_type",
                f"unknown message type {rtype!r}",
                rid,
            )
            return
        # metrics trust only the authenticated binding: before a successful
        # hello every request lands under one fixed label, so a stranger
        # cannot mint unbounded tenant label values into the registry
        tenant = conn.tenant or "unauthenticated"
        self.db.obs.metrics.counter(
            "server_requests",
            help="requests dispatched, by tenant and operation",
            labels={"tenant": tenant, "op": str(rtype)},
        ).inc()
        self.requests_served += 1
        start = loop.time()
        try:
            response = await getattr(self, handler_name)(conn, message)
        except BaseException as exc:  # noqa: BLE001 — mapped to typed frames
            if isinstance(exc, (asyncio.CancelledError, SystemExit)):
                raise
            code = _error_code(exc)
            await self._send_error(conn, code, str(exc) or repr(exc), rid)
        else:
            if response is not None:  # None: the handler already replied
                if rid is not None:
                    response = {**response, "id": rid}
                await self._send(conn, response)
        finally:
            elapsed = loop.time() - start
            self.db.obs.metrics.timed_observe(
                "server_request_seconds", elapsed, op=str(rtype)
            )
            if elapsed >= self.slow_request_seconds:
                self.db.obs.flight.record(
                    "server_slow_request",
                    op=str(rtype),
                    tenant=tenant,
                    duration_ms=round(elapsed * 1000, 3),
                )

    # -- frame output ------------------------------------------------------

    @staticmethod
    async def _write(writer, data: bytes) -> None:
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client already gone; the read loop observes the hangup

    async def _send_raw(self, writer, message: dict) -> None:
        """Best-effort send used before a :class:`_Connection` exists
        (the load-shed path); an unencodable frame is simply dropped."""
        try:
            data = protocol.encode_frame(message, self.max_frame_bytes)
        except ProtocolError:  # pragma: no cover - shed frames are tiny
            return
        await self._write(writer, data)

    async def _send(self, conn: _Connection, message: dict) -> None:
        try:
            data = protocol.encode_frame(message, self.max_frame_bytes)
        except ProtocolError as exc:
            # the response body outgrew the frame ceiling: the stream is
            # still intact (nothing was written), so answer with a typed
            # error frame instead of letting the exception kill the worker
            self._count_error("response_too_large")
            fallback = {
                "type": "error",
                "code": "response_too_large",
                "message": str(exc),
            }
            if "id" in message:
                fallback["id"] = message["id"]
            try:
                data = protocol.encode_frame(fallback, self.max_frame_bytes)
            except ProtocolError:  # oversized id / absurdly small ceiling
                fallback.pop("id", None)
                data = protocol.encode_frame(fallback, MAX_FRAME_BYTES)
        await self._write(conn.writer, data)

    async def _send_error(
        self, conn: _Connection, code: str, text: str, rid
    ) -> None:
        self._count_error(code)
        if len(text) > 512:  # keep error frames small under any ceiling
            text = text[:512] + "…"
        frame = {"type": "error", "code": code, "message": text}
        if rid is not None:
            frame["id"] = rid
        await self._send(conn, frame)
        if code in FATAL_CODES:
            conn.closing = True

    def _count_error(self, code: str) -> None:
        self.db.obs.metrics.counter(
            "server_errors",
            help="error frames sent, by error code",
            labels={"code": code},
        ).inc()

    def _close_connection(self, conn: _Connection) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        conn.closing = True
        self._detach_session(conn)
        if conn.tenant is not None:
            self._tenant_gauge(conn.tenant, -1)
        self.db.obs.events.emit(
            "server_disconnected", peer=str(conn.peer), tenant=conn.tenant
        )
        try:
            conn.writer.close()
        except Exception:  # pragma: no cover - socket already dead
            pass

    def _detach_session(self, conn: _Connection) -> None:
        if conn.session is not None:
            conn.session.close()
            conn.session = None
        conn.view_name = None

    def _tenant_gauge(self, tenant: str, delta: int) -> None:
        count = self._tenant_counts.get(tenant, 0) + delta
        self._tenant_counts[tenant] = max(0, count)
        self.db.obs.metrics.gauge(
            "server_connected",
            help="live connections, by tenant",
            labels={"tenant": tenant},
        ).set(self._tenant_counts[tenant])

    # -- executor helpers --------------------------------------------------

    async def _run(self, fn, *args):
        """Run blocking database work on the thread pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _run_write(self, fn):
        """Run a mutating operation: writer-admission gate, then a
        WriterSession on a pool thread (the latch is a thread primitive)."""

        def guarded():
            with self.sessions.writer():
                return fn()

        async with self._writer_gate:
            return await self._run(guarded)

    @staticmethod
    def _require_attached(conn: _Connection) -> str:
        if conn.view_name is None:
            raise ProtocolError(
                "not_attached", "attach to a view schema before issuing requests"
            )
        return conn.view_name

    @staticmethod
    def _require_greeted(conn: _Connection) -> None:
        if not conn.greeted:
            raise ProtocolError("bad_state", "the first message must be hello")

    # -- handlers: session lifecycle --------------------------------------

    async def _on_hello(self, conn: _Connection, message: dict):
        if conn.greeted:
            raise ProtocolError("bad_state", "hello already exchanged")
        version = message.get("protocol")
        if version != PROTOCOL_VERSION:
            # fatal: the error frame is the whole reply (returns None)
            await self._send_error(
                conn,
                "unsupported_protocol",
                f"server speaks protocol {PROTOCOL_VERSION}, client sent "
                f"{version!r}",
                message.get("id"),
            )
            return None
        if self.auth_token is not None and not hmac.compare_digest(
            str(message.get("token") or ""), self.auth_token
        ):
            await self._send_error(
                conn, "auth_failed", "bad or missing auth token", message.get("id")
            )
            return None
        tenant = str(message.get("tenant") or "default")
        conn.tenant = tenant
        conn.greeted = True
        self._tenant_gauge(tenant, +1)
        self.db.obs.events.emit("server_hello", tenant=tenant, peer=str(conn.peer))
        return {
            "type": "welcome",
            "server": "tse-server",
            "protocol": PROTOCOL_VERSION,
            "max_frame_bytes": self.max_frame_bytes,
            "features": ["views", "schema_changes", "batches", "stats"],
        }

    async def _on_attach(self, conn: _Connection, message: dict) -> dict:
        self._require_greeted(conn)
        view_name = message.get("view")
        if not isinstance(view_name, str) or not view_name:
            raise ProtocolError("bad_request", 'attach requires a "view" name')
        def pin_and_describe():
            # pin + describe as one atomic read: holding the schema latch
            # keeps any schema change from committing between the snapshot
            # and the description, so the "attached" reply always matches
            # the epoch the session is actually pinned to
            session = self.sessions.reader()
            with self.sessions.latch.read():
                session.__enter__()
                try:
                    return session, self.db.describe_view(view_name)
                except BaseException:
                    session.close()
                    raise

        session, described = await self._run(pin_and_describe)
        self._detach_session(conn)  # re-attach replaces the previous binding
        conn.session = session
        conn.view_name = view_name
        self.db.obs.events.emit(
            "server_attached", tenant=conn.tenant, view=view_name
        )
        return {"type": "attached", **described}

    async def _on_detach(self, conn: _Connection, message: dict) -> dict:
        self._require_greeted(conn)
        view_name = conn.view_name
        self._detach_session(conn)
        self.db.obs.events.emit(
            "server_detached", tenant=conn.tenant, view=view_name
        )
        return {"type": "detached", "view": view_name}

    async def _on_goodbye(self, conn: _Connection, message: dict) -> dict:
        conn.closing = True
        return {"type": "bye"}

    async def _on_ping(self, conn: _Connection, message: dict) -> dict:
        return {"type": "pong"}

    # -- handlers: reads ---------------------------------------------------

    async def _on_describe(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)
        described = await self._run(self.db.describe_view, view_name)
        return {"type": "result", **described}

    async def _on_classes(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)

        def read():
            session = conn.session.refresh()
            return {
                "classes": session.class_names(view_name),
                "version": session.view_version(view_name),
            }

        payload = await self._run(read)
        return {"type": "result", **payload}

    async def _on_extent(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)
        view_class = message.get("class")
        if not isinstance(view_class, str):
            raise ProtocolError("bad_request", 'extent requires a "class" name')
        if message.get("values"):
            payload = await self._run(
                self.db.read_extent, view_name, view_class, True
            )
        else:
            # answered from the connection's pinned epoch: the snapshot is
            # stable across the await even while a writer commits
            def read():
                session = conn.session.refresh()
                return {
                    "class": view_class,
                    "oids": [
                        oid.value
                        for oid in session.extent_oids(view_name, view_class)
                    ],
                }

            payload = await self._run(read)
        return {"type": "result", **payload}

    async def _on_count(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)
        view_class = message.get("class")
        if not isinstance(view_class, str):
            raise ProtocolError("bad_request", 'count requires a "class" name')

        def read():
            session = conn.session.refresh()
            return {
                "class": view_class,
                "count": session.count(view_name, view_class),
            }

        payload = await self._run(read)
        return {"type": "result", **payload}

    async def _on_stats(self, conn: _Connection, message: dict) -> dict:
        self._require_greeted(conn)
        snapshot = await self._run(self.db.stats)
        return {"type": "result", "stats": snapshot}

    async def _on_migration_status(
        self, conn: _Connection, message: dict
    ) -> dict:
        self._require_greeted(conn)
        status = await self._run(self.db.migration_status)
        return {"type": "result", "migration": status}

    # -- handlers: writes --------------------------------------------------

    @staticmethod
    def _spec_of(message: dict) -> dict:
        return {
            key: value
            for key, value in message.items()
            if key not in ("type", "id")
        }

    async def _on_update(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)
        spec = self._spec_of(message)
        reports = await self._run_write(
            lambda: self.db.apply_view_updates(view_name, [spec])
        )
        return {"type": "result", **reports[0]}

    async def _on_apply_many(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)
        updates = message.get("updates")
        if not isinstance(updates, list):
            raise ProtocolError(
                "bad_request", 'apply_many requires an "updates" list'
            )
        reports = await self._run_write(
            lambda: self.db.apply_view_updates(view_name, updates)
        )
        return {"type": "result", "count": len(reports), "results": reports}

    async def _schema_change(self, conn: _Connection, message: dict) -> dict:
        view_name = self._require_attached(conn)
        op = message["type"]
        args = self._spec_of(message)
        outcome = await self._run_write(
            lambda: self.db.schema_change(view_name, op, args)
        )
        return {"type": "result", **outcome}

    # the eight primitives share one implementation; each registers its own
    # message type so the protocol surface names every operator explicitly
    _on_add_attribute = _schema_change
    _on_delete_attribute = _schema_change
    _on_add_method = _schema_change
    _on_delete_method = _schema_change
    _on_add_edge = _schema_change
    _on_delete_edge = _schema_change
    _on_add_class = _schema_change
    _on_delete_class = _schema_change

    # -- stats -------------------------------------------------------------

    def stats_dict(self) -> Dict[str, object]:
        """The ``server`` group of ``db.stats()``."""
        return {
            "listening": self._server is not None,
            "connections": len(self._connections),
            "connections_accepted": self.connections_accepted,
            "connections_shed": self.connections_shed,
            "requests_served": self.requests_served,
            "max_connections": self.max_connections,
            "queue_size": self.queue_size,
            "tenants": dict(sorted(self._tenant_counts.items())),
        }


TseServer.HANDLERS = {name: f"_on_{name}" for name in REQUEST_TYPES}
# the registry and the protocol inventory cannot drift: every documented
# request type must have a handler, and vice versa
assert all(
    hasattr(TseServer, method) for method in TseServer.HANDLERS.values()
), "TseServer is missing a handler for a documented request type"


class BackgroundServer:
    """A :class:`TseServer` on its own event-loop thread.

    The shape tests and notebooks want: start, get the bound port, talk to
    it with the blocking :class:`~repro.server.client.Client`, stop.  Use
    as a context manager::

        with BackgroundServer(db) as (host, port):
            client = Client(host, port)
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0, **options):
        self.server = TseServer(db, host, port, **options)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):  # pragma: no cover - hang guard
            raise RuntimeError("server thread failed to start")
        return self.address

    def _run(self) -> None:
        async def main():
            self._stop_event = asyncio.Event()
            self.address = await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._stop_event.wait()
            await self.server.stop()

        asyncio.run(main())

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed (repeated stop)
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._loop = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def serve_forever(db, host: str = "127.0.0.1", port: int = 0, **options):
    """Blocking entry point: serve ``db`` until KeyboardInterrupt.

    Returns the server's final stats dict (so the CLI can print a
    shutdown summary)."""
    server = TseServer(db, host, port, **options)

    async def main():
        bound_host, bound_port = await server.start()
        print(f"tse-server listening on {bound_host}:{bound_port} (Ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return server.stats_dict()
