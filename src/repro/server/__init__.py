"""``repro.server`` — TSE as a multi-tenant network service.

The paper's thesis is that every user evolves *their own view* of one
shared database; this package makes that a deployment reality.  An asyncio
TCP server (:mod:`~repro.server.server`) speaks a length-prefixed framed
JSON protocol (:mod:`~repro.server.protocol`, spec in
``docs/PROTOCOL.md``): clients authenticate, attach to a named view
schema, and issue extent reads, generic updates, atomic batches and the
eight primitive schema changes — each connection mapped onto the
concurrency layer's reader/writer sessions, so a thousand tenants share
one engine without seeing each other's torn state.  A small blocking
:class:`~repro.server.client.Client` serves tests, examples and scripts.

Operational surface: ``.serve HOST PORT`` in the shell, per-tenant
labelled metrics in ``db.stats()``, lifecycle events on the EventBus, and
the operator handbook in ``docs/OPERATIONS.md``.
"""

from repro.server.client import Client, ServerError
from repro.server.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    RESPONSE_TYPES,
    ProtocolError,
)
from repro.server.server import BackgroundServer, TseServer, serve_forever

__all__ = [
    "TseServer",
    "BackgroundServer",
    "serve_forever",
    "Client",
    "ServerError",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "ERROR_CODES",
]
