"""A small blocking client for the TSE server.

The synchronous counterpart of :class:`~repro.server.server.TseServer` —
used by the tests, the examples and quick scripts; load generators should
speak the protocol with asyncio directly (see ``benchmarks/bench_server.py``).

::

    from repro.server.client import Client

    with Client("127.0.0.1", 7777, tenant="registrar") as client:
        client.attach("registrar")
        oid = client.create("Student", name="Ada", major="cs")["oid"]
        client.add_attribute("register", to="Student", domain="str")
        print(client.count("Student"))

Every request/response pair is one method call; an ``error`` frame from
the server raises :class:`ServerError` carrying the typed ``code`` from
``docs/PROTOCOL.md``.
"""

from __future__ import annotations

import itertools
import socket
from typing import Dict, List, Optional, Sequence

from repro.errors import TseError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    read_frame_sync,
    write_frame_sync,
)

__all__ = ["Client", "ServerError"]


class ServerError(TseError):
    """The server answered with an ``error`` frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class Client:
    """One blocking connection: hello on connect, then request/response."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
        protocol: int = PROTOCOL_VERSION,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        connect: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.tenant = tenant
        self.timeout = timeout
        self.protocol = protocol
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._ids = itertools.count(1)
        self.welcome: Optional[dict] = None
        self.view: Optional[str] = None
        if connect:
            self.connect()

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> dict:
        """Open the socket and exchange ``hello``/``welcome``."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello: Dict[str, object] = {"type": "hello", "protocol": self.protocol}
        if self.token is not None:
            hello["token"] = self.token
        if self.tenant is not None:
            hello["tenant"] = self.tenant
        self.welcome = self.request(**hello)
        return self.welcome

    def close(self) -> None:
        """Orderly shutdown: ``goodbye`` (best effort), then close."""
        if self._sock is None:
            return
        try:
            self.request(type="goodbye")
        except (TseError, OSError):
            pass
        try:
            self._sock.close()
        finally:
            self._sock = None

    def __enter__(self) -> "Client":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- the one primitive -------------------------------------------------

    def request(self, **message) -> dict:
        """Send one request frame, wait for its response.

        Adds a correlation ``id`` and checks the response echoes it;
        raises :class:`ServerError` on an ``error`` frame and
        ``ConnectionError`` when the server hangs up."""
        if self._sock is None:
            raise ConnectionError("client is not connected")
        rid = next(self._ids)
        message.setdefault("id", rid)
        write_frame_sync(self._sock, message, max_bytes=self.max_frame_bytes)
        reply = read_frame_sync(self._sock, max_bytes=self.max_frame_bytes)
        if reply is None:
            raise ConnectionError("server closed the connection")
        if reply.get("type") == "error":
            raise ServerError(
                str(reply.get("code", "internal")), str(reply.get("message", ""))
            )
        if "id" in reply and reply["id"] != message["id"]:  # pragma: no cover
            raise TseError(
                f"response id {reply['id']!r} does not match request "
                f"{message['id']!r}"
            )
        return reply

    # -- session -----------------------------------------------------------

    def attach(self, view: str) -> dict:
        reply = self.request(type="attach", view=view)
        self.view = view
        return reply

    def detach(self) -> dict:
        reply = self.request(type="detach")
        self.view = None
        return reply

    def ping(self) -> dict:
        return self.request(type="ping")

    # -- reads -------------------------------------------------------------

    def describe(self) -> dict:
        return self.request(type="describe")

    def classes(self) -> List[str]:
        return self.request(type="classes")["classes"]

    def extent(self, view_class: str, values: bool = False) -> dict:
        return self.request(type="extent", **{"class": view_class, "values": values})

    def count(self, view_class: str) -> int:
        return self.request(type="count", **{"class": view_class})["count"]

    def stats(self) -> dict:
        return self.request(type="stats")["stats"]

    def migration_status(self) -> dict:
        """Lazy-migration progress: backlog, per-epoch watermarks,
        backfill worker state (quiescent shape under eager mode)."""
        return self.request(type="migration_status")["migration"]

    # -- writes ------------------------------------------------------------

    def create(self, view_class: str, **values) -> dict:
        return self.request(
            type="update", op="create", **{"class": view_class, "values": values}
        )

    def update(self, op: str, view_class: str, **fields) -> dict:
        """One generic update; ``fields`` may carry ``values``, ``oids``,
        ``where`` (a JSON predicate) exactly as in docs/PROTOCOL.md."""
        return self.request(type="update", op=op, **{"class": view_class}, **fields)

    def apply_many(self, updates: Sequence[dict]) -> dict:
        return self.request(type="apply_many", updates=list(updates))

    # -- schema changes (the eight primitives) -----------------------------

    def schema_change(self, op: str, **args) -> dict:
        """Issue one primitive schema change against the attached view."""
        return self.request(type=op, **args)

    def add_attribute(self, name: str, to: str, **extra) -> dict:
        return self.schema_change("add_attribute", name=name, to=to, **extra)

    def delete_attribute(self, name: str, from_: str) -> dict:
        return self.schema_change("delete_attribute", name=name, **{"from": from_})

    def add_method(self, name: str, to: str) -> dict:
        return self.schema_change("add_method", name=name, to=to)

    def delete_method(self, name: str, from_: str) -> dict:
        return self.schema_change("delete_method", name=name, **{"from": from_})

    def add_edge(self, sup: str, sub: str) -> dict:
        return self.schema_change("add_edge", sup=sup, sub=sub)

    def delete_edge(self, sup: str, sub: str, connected_to=None) -> dict:
        return self.schema_change(
            "delete_edge", sup=sup, sub=sub, connected_to=connected_to
        )

    def add_class(self, name: str, connected_to=None) -> dict:
        return self.schema_change("add_class", name=name, connected_to=connected_to)

    def delete_class(self, name: str) -> dict:
        return self.schema_change("delete_class", name=name)
