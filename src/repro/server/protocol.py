"""Wire protocol of the TSE server: framing, message inventory, error codes.

This module is the *single source of truth* for the protocol surface.  The
normative prose specification lives in ``docs/PROTOCOL.md``; the
inventories below (:data:`REQUEST_TYPES`, :data:`RESPONSE_TYPES`,
:data:`ERROR_CODES`) are cross-checked against both that document and the
server's actual handler registry by ``tests/test_docs_consistency.py`` —
the doc, the constants and the code cannot drift apart without failing CI.

Framing
-------

Every message travels as one *frame*::

    +----------------+----------------------------------+
    | length: u32 BE | body: <length> bytes UTF-8 JSON  |
    +----------------+----------------------------------+

The body is a single JSON object carrying a ``"type"`` key (one of the
message types) and, on requests, an optional ``"id"`` the server echoes in
the matching response so clients can correlate pipelined traffic.  Frames
larger than the negotiated :data:`MAX_FRAME_BYTES` are refused with a
``frame_too_large`` error; a body that fails to decode is ``bad_frame``.
Both are *connection-fatal*: after a framing error the byte stream cannot
be trusted, so the server sends the error frame and closes.  The ceiling
also applies to *outgoing* bodies, but there the stream stays intact — a
response that outgrows it is replaced by a non-fatal
``response_too_large`` error frame and the connection keeps going.

Version negotiation
-------------------

The first frame on a connection must be ``hello`` carrying the client's
``protocol`` number.  The server speaks exactly
:data:`PROTOCOL_VERSION`; a different number is answered with an
``unsupported_protocol`` error naming the supported version, then the
connection closes.  The ``welcome`` response repeats the server's version
so future clients can downgrade before giving up.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

from repro.errors import TseError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "ERROR_CODES",
    "FATAL_CODES",
    "ProtocolError",
    "encode_frame",
    "decode_body",
    "read_frame",
    "read_frame_sync",
    "write_frame_sync",
]

#: the one protocol version this implementation speaks
PROTOCOL_VERSION = 1

#: default ceiling on one frame's body size (requests *and* responses)
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")

#: request ``type`` values the server registers a handler for, with the
#: one-line contract the documentation must repeat
REQUEST_TYPES: Dict[str, str] = {
    "hello": "open the session: auth token, protocol version, tenant name",
    "attach": "bind the connection to a named view schema",
    "detach": "release the attached view schema (stay connected)",
    "goodbye": "orderly shutdown of the connection",
    "ping": "liveness probe; answered with pong",
    "describe": "the attached view schema: classes, properties, version",
    "classes": "class names of the attached view",
    "extent": "extent of one view class (OIDs, optionally object values)",
    "count": "extent cardinality of one view class",
    "stats": "full metrics snapshot (the .stats of the wire)",
    "migration_status": "lazy-migration progress: backlog, per-epoch "
    "watermarks, backfill worker state",
    "update": "one generic update: create/set/delete/add/remove",
    "apply_many": "a batch of generic updates applied atomically",
    "add_attribute": "primitive schema change: add an attribute to a class",
    "delete_attribute": "primitive schema change: hide an attribute",
    "add_method": "primitive schema change: add a method to a class",
    "delete_method": "primitive schema change: hide a method",
    "add_edge": "primitive schema change: add an is-a edge",
    "delete_edge": "primitive schema change: delete an is-a edge",
    "add_class": "primitive schema change: add a class to the view",
    "delete_class": "primitive schema change: remove a class from the view",
}

#: response ``type`` values the server emits
RESPONSE_TYPES: Dict[str, str] = {
    "welcome": "successful hello: server name, protocol version, features",
    "attached": "successful attach: view name, version, classes",
    "detached": "successful detach",
    "bye": "acknowledges goodbye; the server closes after sending it",
    "pong": "answers ping",
    "result": "successful data/schema request; payload depends on the request",
    "error": "any failure: code, human-readable message, echoed id",
}

#: error ``code`` values an ``error`` frame may carry
ERROR_CODES: Dict[str, str] = {
    "bad_frame": "frame body was not a JSON object (connection closes)",
    "frame_too_large": "frame exceeded the size ceiling (connection closes)",
    "response_too_large": "the response body outgrew the frame ceiling; "
    "this error frame replaces it (connection stays open)",
    "unsupported_protocol": "hello carried an unknown protocol version (closes)",
    "auth_failed": "hello token did not match the server's (closes)",
    "busy": "deliberate load shed: connection limit reached (closes)",
    "shutting_down": "server is stopping; retry against a new server (closes)",
    "bad_state": "message arrived out of order (e.g. attach before hello)",
    "unknown_type": "request type is not in the protocol",
    "not_attached": "data request before a successful attach",
    "unknown_view": "attach named a view schema that does not exist",
    "unknown_class": "request named a class the attached view does not have",
    "bad_request": "request arguments were missing or malformed",
    "rejected": "the database refused the operation (semantic error)",
    "internal": "unexpected server-side failure",
}

#: error codes after which the server closes the connection
FATAL_CODES = frozenset(
    {
        "bad_frame",
        "frame_too_large",
        "unsupported_protocol",
        "auth_failed",
        "busy",
        "shutting_down",
    }
)


class ProtocolError(TseError):
    """A violation of the wire protocol, carrying its error ``code``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        if code not in ERROR_CODES:  # pragma: no cover - programming error
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code


def encode_frame(message: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One message as header + JSON body bytes.

    Values outside the JSON vocabulary (OIDs in ``repr`` position, enum
    members in stats groups) are stringified rather than refused — the
    read side of the protocol never needs to rebuild them.
    """
    body = json.dumps(message, separators=(",", ":"), default=str).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_bytes}-byte ceiling",
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_frame", f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad_frame", f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on an oversized or undecodable frame and
    ``ConnectionError``/``IncompleteReadError`` on a mid-frame hangup.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"incoming frame announces {length} bytes "
            f"(ceiling is {max_bytes})",
        )
    body = await reader.readexactly(length)
    return decode_body(body)


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Blocking-socket counterpart of :func:`read_frame` (used by the
    synchronous :class:`~repro.server.client.Client`)."""
    first = sock.recv(_HEADER.size)
    if not first:
        return None
    header = first + (
        _recv_exactly(sock, _HEADER.size - len(first))
        if len(first) < _HEADER.size
        else b""
    )
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            "frame_too_large",
            f"incoming frame announces {length} bytes (ceiling is {max_bytes})",
        )
    return decode_body(_recv_exactly(sock, length))


def write_frame_sync(
    sock: socket.socket, message: dict, max_bytes: int = MAX_FRAME_BYTES
) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(message, max_bytes=max_bytes))
