"""Hash indexes over stored attributes.

OODBs — GemStone included — maintain attribute indexes to avoid full extent
scans.  Our indexes live at the *storage class* level: an index on
``(storage_class, attribute)`` covers every object carrying a slice of that
class, which is exactly the set of objects that can have the value.  Query
layers intersect index hits with the queried class's extent, so one index
serves a base class, all its subclasses and every extent-preserving virtual
class that shares the storage definition (a capacity-augmenting refine's
attribute gets indexed at the refine class).

Maintenance is event-driven: the instance pool publishes value writes and
object destruction; the manager keeps the buckets exact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.errors import ObjectModelError
from repro.objectmodel.slicing import InstancePool
from repro.storage.oid import Oid


class _Unset:
    """Sentinel for 'attribute has no value' (distinct from ``None``)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


UNSET = _Unset()


@dataclass
class HashIndex:
    """One exact-match index on ``(storage_class, attribute)``."""

    storage_class: str
    attribute: str
    _buckets: Dict[object, Set[Oid]] = field(default_factory=lambda: defaultdict(set))
    _known: Dict[Oid, object] = field(default_factory=dict)
    lookups: int = 0

    @staticmethod
    def _key(value: object) -> object:
        try:
            hash(value)
        except TypeError:
            return repr(value)
        return value

    def put(self, oid: Oid, value: object) -> None:
        previous = self._known.get(oid, UNSET)
        if previous is not UNSET:
            self._buckets[self._key(previous)].discard(oid)
        self._known[oid] = value
        self._buckets[self._key(value)].add(oid)

    def drop(self, oid: Oid) -> None:
        previous = self._known.pop(oid, UNSET)
        if previous is not UNSET:
            self._buckets[self._key(previous)].discard(oid)

    def lookup(self, value: object) -> FrozenSet[Oid]:
        self.lookups += 1
        return frozenset(self._buckets.get(self._key(value), ()))

    @property
    def entry_count(self) -> int:
        return len(self._known)


class IndexManager:
    """Creates indexes and keeps them exact via pool events."""

    def __init__(self, pool: InstancePool) -> None:
        self.pool = pool
        self._indexes: Dict[Tuple[str, str], HashIndex] = {}
        pool.add_value_listener(self._on_value)
        pool.add_destroy_listener(self._on_destroy)
        pool.add_slice_drop_listener(self._on_membership_drop)

    # -- lifecycle ------------------------------------------------------------

    def create_index(self, storage_class: str, attribute: str) -> HashIndex:
        """Create (or return the existing) index, backfilled from live data."""
        key = (storage_class, attribute)
        existing = self._indexes.get(key)
        if existing is not None:
            return existing
        index = HashIndex(storage_class, attribute)
        for obj in self.pool.objects():
            impl = obj.implementations.get(storage_class)
            if impl is not None and self.pool.store.has_value(
                impl.slice_id, attribute
            ):
                index.put(obj.oid, self.pool.store.get_value(impl.slice_id, attribute))
        self._indexes[key] = index
        return index

    def drop_index(self, storage_class: str, attribute: str) -> None:
        try:
            del self._indexes[(storage_class, attribute)]
        except KeyError:
            raise ObjectModelError(
                f"no index on {storage_class!r}.{attribute!r}"
            ) from None

    def get(self, storage_class: str, attribute: str) -> Optional[HashIndex]:
        return self._indexes.get((storage_class, attribute))

    def index_names(self) -> Iterable[Tuple[str, str]]:
        return sorted(self._indexes)

    # -- event maintenance -----------------------------------------------------

    def _on_value(self, oid: Oid, storage_class: str, attribute: str, value: object) -> None:
        index = self._indexes.get((storage_class, attribute))
        if index is not None:
            index.put(oid, value)

    def _on_destroy(self, oid: Oid) -> None:
        for index in self._indexes.values():
            index.drop(oid)

    def _on_membership_drop(self, oid: Oid, storage_class: str) -> None:
        for (cls, _attr), index in self._indexes.items():
            if cls == storage_class:
                index.drop(oid)
