"""Object model layer: object slicing (section 4) and its baseline rival."""

from repro.objectmodel.slicing import (
    ConceptualObject,
    ImplementationObject,
    InstancePool,
)

__all__ = ["ConceptualObject", "ImplementationObject", "InstancePool"]
