"""The object-slicing object model (section 4 of the paper).

One logical object is represented as a *conceptual object* — a bare OID plus
membership bookkeeping — linked to one *implementation object* per class that
stores attributes for it.  This gives the two capabilities capacity-
augmenting views need (section 2.3):

* **multiple classification** — an object is simultaneously a member of every
  class it has (or could lazily have) a slice for;
* **dynamic restructuring** — giving every instance of ``Car`` a new stored
  attribute (via a capacity-augmenting refine class) requires no rewrite of
  existing storage: a new implementation object per car is created, lazily,
  the first time the new attribute is touched.

Slices live in the :class:`~repro.storage.store.ObjectStore`, clustered by
their class, so the page-level cost claims of Table 1 are observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Container, Dict, FrozenSet, Iterable, ItemsView, Iterator, Optional, Set

from repro.errors import InvalidCast, NotAMember, ObjectNotFound
from repro.storage.oid import OID_SIZE_BYTES, POINTER_SIZE_BYTES, Oid
from repro.storage.store import ObjectStore

#: distinguishes "attribute never written" from a stored ``None`` so
#: :meth:`InstancePool.get_value` costs one page read instead of two
_MISSING = object()


@dataclass(frozen=True, slots=True)
class PoolDelta:
    """One typed change event emitted to delta listeners.

    Kinds and their populated fields:

    ==================  ==========================================
    ``add_membership``     ``oid``, ``class_name``
    ``remove_membership``  ``oid``, ``class_name``
    ``set_value``          ``oid``, ``class_name`` (storage class), ``attr``
    ``remove_value``       ``oid``, ``class_name`` (storage class), ``attr``
    ``destroy``            ``oid``
    ``reset``              (none — the whole pool state was replaced)
    ==================  ==========================================

    Incremental extent maintenance consumes these to apply ``±{oid}``
    through the derivation DAG instead of recomputing extents wholesale.
    """

    kind: str
    oid: Optional[Oid] = None
    class_name: Optional[str] = None
    attr: Optional[str] = None


@dataclass(slots=True)
class ImplementationObject:
    """One class-specific slice of a conceptual object.

    Carries its own OID (Table 1: ``#oids = 1 + N_impl``), the class whose
    locally-introduced stored attributes it holds, and the two pointers that
    link it with its conceptual object (``2 * N_impl`` pointers of managerial
    storage per object).
    """

    oid: Oid
    class_name: str
    conceptual_oid: Oid
    slice_id: Oid


class ConceptualObject:
    """The identity-bearing half of a sliced object.

    ``__slots__`` because the pool holds one of these per live object and
    the hot paths (value reads, membership checks) chase through them — a
    slotted layout removes the per-instance ``__dict__`` both in memory and
    in attribute-lookup indirection.
    """

    __slots__ = ("oid", "direct_classes", "implementations", "current_class")

    def __init__(self, oid: Oid) -> None:
        self.oid = oid
        #: base classes the object is a *direct* member of
        self.direct_classes: Set[str] = set()
        #: storage class name -> implementation object
        self.implementations: Dict[str, ImplementationObject] = {}
        #: the class currently representing the object (casting, Table 1)
        self.current_class: Optional[str] = None

    @property
    def n_impl(self) -> int:
        """Number of implementation objects (``N_impl`` in Table 1)."""
        return len(self.implementations)

    def managerial_storage_bytes(self) -> int:
        """Table 1 formula: ``(1 + N_impl) * sizeOf(oid) + N_impl * 2 *
        sizeOf(pointer)``."""
        return (1 + self.n_impl) * OID_SIZE_BYTES + self.n_impl * 2 * POINTER_SIZE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<object {self.oid} in {sorted(self.direct_classes)}>"


class InstancePool:
    """Creates, classifies and destroys sliced objects over an object store.

    The pool is schema-agnostic: membership is tracked by class *name* and
    slices by storage-class *name*.  The schema layer decides which classes
    exist and where each attribute is stored; the pool just keeps the slices.
    """

    def __init__(self, store: ObjectStore) -> None:
        self.store = store
        self._objects: Dict[Oid, ConceptualObject] = {}
        self._members_direct: Dict[str, Set[Oid]] = {}
        self._generation = 0
        #: callbacks fired on value writes: (oid, storage_class, attr, value)
        self._value_listeners: list = []
        #: callbacks fired when an object is destroyed: (oid,)
        self._destroy_listeners: list = []
        #: callbacks fired when a slice is dropped: (oid, storage_class)
        self._slice_drop_listeners: list = []
        #: callbacks fired with a :class:`PoolDelta` on every mutation
        self._delta_listeners: list = []
        #: optional :class:`~repro.concurrency.migration.MigrationEngine`;
        #: when set, every leaf mutator asks it to seal affected pending
        #: epoch extents *before* the pool state changes (lazy migration)
        self.migration = None

    def add_value_listener(self, callback) -> None:
        """Subscribe to attribute writes (index maintenance hook)."""
        self._value_listeners.append(callback)

    def add_delta_listener(self, callback) -> None:
        """Subscribe to typed :class:`PoolDelta` events (extent maintenance).

        Deltas fire *after* the pool state reflects the change, so a
        listener re-reading the pool observes the post-state.
        """
        self._delta_listeners.append(callback)

    def _emit(self, delta: PoolDelta) -> None:
        for listener in self._delta_listeners:
            listener(delta)

    def add_destroy_listener(self, callback) -> None:
        """Subscribe to object destruction (index maintenance hook)."""
        self._destroy_listeners.append(callback)

    def add_slice_drop_listener(self, callback) -> None:
        """Subscribe to per-class slice drops (index maintenance hook)."""
        self._slice_drop_listeners.append(callback)

    @property
    def generation(self) -> int:
        """Monotone counter bumped on membership changes (extent caching)."""
        return self._generation

    def _dirty(self) -> None:
        self._generation += 1

    # -- lifecycle ------------------------------------------------------------

    def create_object(self, direct_classes: Iterable[str]) -> ConceptualObject:
        """Create a conceptual object that is a direct member of each class."""
        direct_classes = tuple(direct_classes)
        mig = self.migration
        sealed = mig is not None and mig.begin_mutation(
            "membership", class_names=direct_classes
        )
        try:
            oid = self.store.allocate_oid()
            obj = ConceptualObject(oid)
            self._objects[oid] = obj
            for name in direct_classes:
                self._add_direct(obj, name)
            self._dirty()
            for name in obj.direct_classes:
                self._emit(PoolDelta("add_membership", oid=oid, class_name=name))
            return obj
        finally:
            if sealed:
                mig.end_mutation()

    def destroy_object(self, oid: Oid) -> None:
        """Destroy an object: all slices dropped, all memberships removed.

        This is the semantics of the generic ``delete`` operator — the object
        is "removed from all the classes which they belong to" (section 3.3).
        """
        obj = self.get(oid)
        mig = self.migration
        sealed = mig is not None and mig.begin_mutation("destroy", oid=oid)
        try:
            for impl in obj.implementations.values():
                self.store.drop_slice(impl.slice_id)
            for name in list(obj.direct_classes):
                self._discard_direct(oid, name)
            del self._objects[oid]
            self._dirty()
            for listener in self._destroy_listeners:
                listener(oid)
            self._emit(PoolDelta("destroy", oid=oid))
        finally:
            if sealed:
                mig.end_mutation()

    def get(self, oid: Oid) -> ConceptualObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFound(f"no live object with {oid}") from None

    def exists(self, oid: Oid) -> bool:
        return oid in self._objects

    def all_oids(self) -> FrozenSet[Oid]:
        return frozenset(self._objects)

    def objects(self) -> Iterator[ConceptualObject]:
        return iter(self._objects.values())

    @property
    def object_count(self) -> int:
        return len(self._objects)

    # -- membership (multiple & dynamic classification) -------------------------

    def _add_direct(self, obj: ConceptualObject, class_name: str) -> None:
        obj.direct_classes.add(class_name)
        self._members_direct.setdefault(class_name, set()).add(obj.oid)

    def _discard_direct(self, oid: Oid, class_name: str) -> None:
        """Drop one direct membership, pruning the bucket when it empties so
        ``classes_with_members`` never iterates dead entries."""
        bucket = self._members_direct.get(class_name)
        if bucket is not None:
            bucket.discard(oid)
            if not bucket:
                del self._members_direct[class_name]

    def add_membership(self, oid: Oid, class_name: str) -> None:
        """Make the object a direct member of another class (generic ``add``).

        With object slicing this is cheap: record membership; slices appear
        lazily when class-specific attributes are touched.
        """
        obj = self.get(oid)
        if class_name not in obj.direct_classes:
            mig = self.migration
            sealed = mig is not None and mig.begin_mutation(
                "membership", oid=oid, class_names=(class_name,)
            )
            try:
                self._add_direct(obj, class_name)
                self._dirty()
                self._emit(
                    PoolDelta("add_membership", oid=oid, class_name=class_name)
                )
            finally:
                if sealed:
                    mig.end_mutation()

    def remove_membership(
        self, oid: Oid, class_name: str, keep_slice: bool = False
    ) -> None:
        """Remove direct membership (generic ``remove``); drops the slice.

        ``keep_slice=True`` preserves the implementation slice: the caller
        (who knows the schema) has established that ``class_name`` is still
        an ancestor of one of the object's remaining memberships, so its
        stored attributes are still part of the object's type and must not
        be lost with the direct membership.
        """
        obj = self.get(oid)
        if class_name not in obj.direct_classes:
            raise NotAMember(f"{oid} is not a direct member of {class_name!r}")
        mig = self.migration
        sealed = mig is not None and mig.begin_mutation(
            "membership", oid=oid, class_names=(class_name,)
        )
        try:
            obj.direct_classes.discard(class_name)
            self._discard_direct(oid, class_name)
            if not keep_slice:
                impl = obj.implementations.pop(class_name, None)
                if impl is not None:
                    self.store.drop_slice(impl.slice_id)
                    for listener in self._slice_drop_listeners:
                        listener(oid, class_name)
            if obj.current_class == class_name:
                obj.current_class = None
            self._dirty()
            self._emit(
                PoolDelta("remove_membership", oid=oid, class_name=class_name)
            )
        finally:
            if sealed:
                mig.end_mutation()

    def reclassify(self, oid: Oid, from_class: str, to_class: str) -> None:
        """Dynamic classification (Table 1): swap one membership for another.

        With slicing this is "creating and destroying implementation
        objects" — no value copying, no identity swap.
        """
        self.remove_membership(oid, from_class)
        self.add_membership(oid, to_class)

    def members_direct(self, class_name: str) -> FrozenSet[Oid]:
        return frozenset(self._members_direct.get(class_name, ()))

    def classes_with_members(self) -> FrozenSet[str]:
        # empty buckets are pruned eagerly, so the keys are exactly the
        # classes with at least one direct member
        return frozenset(self._members_direct)

    def direct_membership_items(self) -> ItemsView[str, Set[Oid]]:
        """Read-only view over ``(class_name, direct members)`` pairs.

        Exposed for extent evaluation, which unions many buckets per call;
        handing out the live sets avoids one frozenset copy per bucket.
        Callers must not mutate the sets.
        """
        return self._members_direct.items()

    # -- casting ----------------------------------------------------------------

    def cast(self, oid: Oid, class_name: str, member_of: Container[str]) -> None:
        """Cast the object to ``class_name`` (switch its representative
        implementation object).

        ``member_of`` is any container of classes the caller (who knows the
        schema) has established the object belongs to; casting outside it
        raises.
        """
        obj = self.get(oid)
        if class_name not in member_of:
            raise InvalidCast(f"{oid} is not a member of {class_name!r}")
        obj.current_class = class_name

    # -- slices and values ----------------------------------------------------------

    def ensure_slice(self, oid: Oid, storage_class: str) -> ImplementationObject:
        """Return the implementation object for ``storage_class``, creating
        it lazily — the dynamic-restructuring move of section 4.1."""
        obj = self.get(oid)
        impl = obj.implementations.get(storage_class)
        if impl is None:
            slice_id = self.store.create_slice(storage_class)
            impl = ImplementationObject(
                oid=self.store.allocate_oid(),
                class_name=storage_class,
                conceptual_oid=oid,
                slice_id=slice_id,
            )
            obj.implementations[storage_class] = impl
        return impl

    def get_value(
        self, oid: Oid, storage_class: str, attr: str, default: object = None
    ) -> object:
        """Read one stored attribute from the object's slice for the class.

        A missing slice means the attribute was never written: the default
        applies without materialising the slice (reads stay cheap even right
        after a capacity-augmenting refine over a huge extent).
        """
        obj = self.get(oid)
        impl = obj.implementations.get(storage_class)
        if impl is None:
            return default
        value = self.store.get_value(impl.slice_id, attr, _MISSING)
        return default if value is _MISSING else value

    def value_reader(self, storage_class: str, attr: str, default: object = None):
        """A pre-bound reader ``fn(oid) -> value``, equivalent to
        :meth:`get_value` with the same arguments but with the object table
        and the store-side column reader resolved once.  Built by the extent
        evaluator's plans so select scans read attribute values without any
        per-object setup."""
        slice_read = self.store.value_reader(storage_class, attr, default)

        def read(oid: Oid, _pool=self) -> object:
            # _objects is reassigned wholesale by restore(); go through the
            # pool attribute so savepoint rollbacks are always visible
            try:
                obj = _pool._objects[oid]
            except KeyError:
                raise ObjectNotFound(f"no live object with {oid}") from None
            impl = obj.implementations.get(storage_class)
            if impl is None:
                return default
            return slice_read(impl.slice_id)

        return read

    def has_value(self, oid: Oid, storage_class: str, attr: str) -> bool:
        obj = self.get(oid)
        impl = obj.implementations.get(storage_class)
        return impl is not None and self.store.has_value(impl.slice_id, attr)

    def set_value(self, oid: Oid, storage_class: str, attr: str, value: object) -> None:
        """Write one stored attribute into the slice, creating it on demand.

        Value writes bump the pool generation because select-class extents
        depend on attribute values, not only on memberships.
        """
        mig = self.migration
        sealed = mig is not None and mig.begin_mutation(
            "value", oid=oid, class_names=(storage_class,), attr=attr
        )
        try:
            impl = self.ensure_slice(oid, storage_class)
            self.store.put_value(impl.slice_id, attr, value)
            self._dirty()
            for listener in self._value_listeners:
                listener(oid, storage_class, attr, value)
            self._emit(
                PoolDelta("set_value", oid=oid, class_name=storage_class, attr=attr)
            )
        finally:
            if sealed:
                mig.end_mutation()

    def remove_value(self, oid: Oid, storage_class: str, attr: str) -> None:
        """Erase one stored attribute (used by update rollback)."""
        obj = self.get(oid)
        impl = obj.implementations.get(storage_class)
        if impl is not None:
            mig = self.migration
            sealed = mig is not None and mig.begin_mutation(
                "value", oid=oid, class_names=(storage_class,), attr=attr
            )
            try:
                self.store.remove_value(impl.slice_id, attr)
                self._dirty()
                self._emit(
                    PoolDelta(
                        "remove_value", oid=oid, class_name=storage_class, attr=attr
                    )
                )
            finally:
                if sealed:
                    mig.end_mutation()

    # -- mementos -------------------------------------------------------------

    def memento(self) -> tuple:
        """A restorable snapshot of memberships and slice links.

        Implementation objects are immutable records, so sharing them
        between the live state and the memento is safe; the mutable sets and
        dicts are copied.
        """
        objects = {}
        for oid, obj in self._objects.items():
            clone = ConceptualObject(oid)
            clone.direct_classes = set(obj.direct_classes)
            clone.implementations = dict(obj.implementations)
            clone.current_class = obj.current_class
            objects[oid] = clone
        members = {name: set(oids) for name, oids in self._members_direct.items()}
        return (objects, members)

    def restore(self, memento: tuple) -> None:
        """Roll memberships and slice links back to a prior :meth:`memento`.

        The wholesale replacement can move any extent, so pending epoch
        captures are all sealed first — with publish-time values: the
        restore target is the savepoint entry state, and any class a
        mid-savepoint mutation touched was already sealed by that
        mutation's own hook.
        """
        mig = self.migration
        sealed = mig is not None and mig.begin_mutation("reset")
        try:
            self._restore_body(memento)
        finally:
            if sealed:
                mig.end_mutation()

    def _restore_body(self, memento: tuple) -> None:
        objects, members = memento
        self._objects = {}
        for oid, obj in objects.items():
            clone = ConceptualObject(oid)
            clone.direct_classes = set(obj.direct_classes)
            clone.implementations = dict(obj.implementations)
            clone.current_class = obj.current_class
            self._objects[oid] = clone
        self._members_direct = {
            name: set(oids) for name, oids in members.items() if oids
        }
        self._dirty()
        self._emit(PoolDelta("reset"))

    # -- statistics for Table 1 ---------------------------------------------------

    def total_oids_used(self) -> int:
        """OIDs consumed by conceptual plus implementation objects."""
        return sum(1 + obj.n_impl for obj in self._objects.values())

    def total_managerial_bytes(self) -> int:
        return sum(obj.managerial_storage_bytes() for obj in self._objects.values())

    def average_n_impl(self) -> float:
        if not self._objects:
            return 0.0
        return sum(obj.n_impl for obj in self._objects.values()) / len(self._objects)
