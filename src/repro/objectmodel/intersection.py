"""The intersection-class architecture (section 4.1's alternative).

The conventional OODB invariant is "an object belongs to exactly one class".
To make an object a member of two classes, the intersection-class approach
fabricates a hidden class ``Jeep&Imported`` that is a subclass of both, then
stores the object there; dynamic reclassification means creating a *new*
object of the new class, copying every attribute value, and swapping the
object identities.

We implement the approach fully — hidden class fabrication, contiguous
single-chunk object storage, copy-and-swap reclassification — so that
Table 1's comparison against object slicing can be *measured*:

* ``#oids`` per object is 1 (vs ``1 + N_impl``);
* managerial storage is one OID (vs OIDs plus slice pointers);
* the number of classes grows with the number of membership *combinations*
  in use (worst case ``2^N_class``), while slicing never fabricates classes;
* inherited-attribute access is one contiguous read (vs pointer chasing);
* attribute-restricted selects must scan whole objects clustered by their
  combination class (vs small same-class slices);
* reclassification costs a full copy plus identity swap (vs slice add/drop).

The model is deliberately independent of the TSE stack — it exists to be
benchmarked, exactly like the paper's Table 1 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import NotAMember, ObjectNotFound, UnknownClass
from repro.storage.oid import OID_SIZE_BYTES, Oid
from repro.storage.store import ObjectStore


@dataclass
class IntersectionClass:
    """A class in the intersection-class model.

    ``parents`` holds direct superclasses; ``hidden`` marks fabricated
    intersection classes (``A&B``) that no user ever declared.
    """

    name: str
    attributes: Tuple[str, ...] = ()
    parents: Tuple[str, ...] = ()
    hidden: bool = False


class IntersectionModel:
    """A miniature single-classification OODB with intersection classes."""

    def __init__(self, store: Optional[ObjectStore] = None) -> None:
        self.store = store or ObjectStore()
        self._classes: Dict[str, IntersectionClass] = {}
        #: object oid -> (class name, slice id of the contiguous chunk)
        self._objects: Dict[Oid, Tuple[str, Oid]] = {}
        self._copies_performed = 0
        self._identity_swaps = 0

    # -- schema -----------------------------------------------------------------

    def define_class(
        self,
        name: str,
        attributes: Iterable[str] = (),
        parents: Iterable[str] = (),
    ) -> IntersectionClass:
        if name in self._classes:
            raise UnknownClass(f"class {name!r} already defined")
        for parent in parents:
            self._class(parent)
        cls = IntersectionClass(
            name=name, attributes=tuple(attributes), parents=tuple(parents)
        )
        self._classes[name] = cls
        return cls

    def _class(self, name: str) -> IntersectionClass:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClass(f"unknown class {name!r}") from None

    def all_attributes(self, name: str) -> Tuple[str, ...]:
        """Attributes of a class including inherited ones, supers first.

        The multiple-inheritance resolution scheme is fixed at install time
        (Table 1's last row): first parent wins on a name clash, and the
        layout of every object chunk depends on it.
        """
        cls = self._class(name)
        seen: List[str] = []
        for parent in cls.parents:
            for attr in self.all_attributes(parent):
                if attr not in seen:
                    seen.append(attr)
        for attr in cls.attributes:
            if attr not in seen:
                seen.append(attr)
        return tuple(seen)

    def ancestors(self, name: str) -> FrozenSet[str]:
        cls = self._class(name)
        result: Set[str] = set()
        frontier = list(cls.parents)
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._class(current).parents)
        return frozenset(result)

    def class_count(self, include_hidden: bool = True) -> int:
        if include_hidden:
            return len(self._classes)
        return sum(1 for c in self._classes.values() if not c.hidden)

    def hidden_class_count(self) -> int:
        return sum(1 for c in self._classes.values() if c.hidden)

    # -- intersection-class fabrication -----------------------------------------------

    def _intersection_name(self, names: Iterable[str]) -> str:
        return "&".join(sorted(names))

    def ensure_combination(self, names: Iterable[str]) -> str:
        """Return (fabricating if needed) the class for a membership set."""
        unique = sorted(set(names))
        if len(unique) == 1:
            return unique[0]
        for name in unique:
            self._class(name)
        combo_name = self._intersection_name(unique)
        if combo_name not in self._classes:
            self._classes[combo_name] = IntersectionClass(
                name=combo_name, attributes=(), parents=tuple(unique), hidden=True
            )
        return combo_name

    # -- objects -----------------------------------------------------------------

    def create_object(self, class_names: Iterable[str], values: Optional[dict] = None) -> Oid:
        """Create an object member of all ``class_names`` (fabricates the
        intersection class when more than one)."""
        combo = self.ensure_combination(class_names)
        oid = self.store.allocate_oid()
        chunk = {attr: None for attr in self.all_attributes(combo)}
        if values:
            for key, value in values.items():
                if key not in chunk:
                    raise NotAMember(
                        f"attribute {key!r} undefined for {combo!r}"
                    )
                chunk[key] = value
        slice_id = self.store.create_slice(combo, chunk)
        self._objects[oid] = (combo, slice_id)
        return oid

    def _object(self, oid: Oid) -> Tuple[str, Oid]:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFound(f"no object with {oid}") from None

    def class_of(self, oid: Oid) -> str:
        return self._object(oid)[0]

    def is_member(self, oid: Oid, class_name: str) -> bool:
        current, _ = self._object(oid)
        return current == class_name or class_name in self.ancestors(current)

    def get_value(self, oid: Oid, attr: str) -> object:
        """One contiguous read — inherited attributes cost the same as local
        ones (Table 1: "fast access to inherited attributes")."""
        _, slice_id = self._object(oid)
        return self.store.get_value(slice_id, attr)

    def set_value(self, oid: Oid, attr: str, value: object) -> None:
        current, slice_id = self._object(oid)
        if attr not in self.all_attributes(current):
            raise NotAMember(f"attribute {attr!r} undefined for {current!r}")
        self.store.put_value(slice_id, attr, value)

    def destroy_object(self, oid: Oid) -> None:
        _, slice_id = self._object(oid)
        self.store.drop_slice(slice_id)
        del self._objects[oid]

    # -- dynamic classification (the expensive path) ----------------------------------

    def add_membership(self, oid: Oid, class_name: str) -> None:
        """Make the object additionally a member of ``class_name``.

        Fabricates the widened intersection class, creates a fresh chunk of
        the new layout, copies every value, and swaps identities — the copy
        machinery Table 1 charges this architecture with.
        """
        current, _ = self._object(oid)
        base_memberships = self._user_memberships(current)
        if class_name in base_memberships:
            return
        self._reclassify(oid, base_memberships | {class_name})

    def remove_membership(self, oid: Oid, class_name: str) -> None:
        current, _ = self._object(oid)
        base_memberships = self._user_memberships(current)
        if class_name not in base_memberships:
            raise NotAMember(f"{oid} is not a direct member of {class_name!r}")
        remaining = base_memberships - {class_name}
        if not remaining:
            raise NotAMember("an object must remain member of at least one class")
        self._reclassify(oid, remaining)

    def _user_memberships(self, class_name: str) -> Set[str]:
        cls = self._class(class_name)
        if cls.hidden:
            return set(cls.parents)
        return {class_name}

    def _reclassify(self, oid: Oid, memberships: Set[str]) -> None:
        combo = self.ensure_combination(memberships)
        _, old_slice = self._object(oid)
        old_values = self.store.read_slice(old_slice)
        new_chunk = {attr: None for attr in self.all_attributes(combo)}
        for attr, value in old_values.items():
            if attr in new_chunk:
                new_chunk[attr] = value
        self._copies_performed += 1
        new_slice = self.store.create_slice(combo, new_chunk)
        # identity swap: the object keeps its oid, pointing at the new chunk
        self._identity_swaps += 1
        self.store.drop_slice(old_slice)
        self._objects[oid] = (combo, new_slice)

    # -- scans and statistics ---------------------------------------------------------

    def extent(self, class_name: str) -> FrozenSet[Oid]:
        return frozenset(
            oid for oid in self._objects if self.is_member(oid, class_name)
        )

    def scan_members(self, class_name: str) -> Iterator[Tuple[Oid, dict]]:
        """Scan the extent, charging page reads for every member chunk."""
        for oid in sorted(self._objects):
            current, slice_id = self._objects[oid]
            if current == class_name or class_name in self.ancestors(current):
                yield oid, self.store.read_slice(slice_id)

    def total_oids_used(self) -> int:
        """One OID per object — Table 1's ``#oids = 1``."""
        return len(self._objects)

    def total_managerial_bytes(self) -> int:
        return len(self._objects) * OID_SIZE_BYTES

    @property
    def copies_performed(self) -> int:
        return self._copies_performed

    @property
    def identity_swaps(self) -> int:
        return self._identity_swaps

    @property
    def object_count(self) -> int:
        return len(self._objects)
